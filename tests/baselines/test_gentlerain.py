"""GentleRain baseline: GST semantics and scalar stamps."""

import pytest

from repro.baselines.base import BaselinePayload
from repro.baselines.gentlerain import GentleRainDatacenter, gentlerain_merge
from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.harness.runner import MetricsHub
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry


def make_cluster():
    sim = Simulator()
    model = LatencyModel(local_latency=0.25)
    model.set("I", "F", 10.0)
    model.set("I", "T", 100.0)
    model.set("F", "T", 110.0)
    network = Network(sim, latency_model=model, rng=RngRegistry(seed=2))
    replication = ReplicationMap(["I", "F", "T"])
    metrics = MetricsHub(sim)
    dcs = {}
    for site in ("I", "F", "T"):
        dc = GentleRainDatacenter(sim, site, site, replication, CostModel(),
                                  PhysicalClock(sim), metrics=metrics)
        dc.attach_network(network)
        network.place(dc.name, site)
        dcs[site] = dc
    for dc in dcs.values():
        dc.start()
    return sim, dcs, metrics


def test_merge_scalar():
    assert gentlerain_merge(None, 3.0) == 3.0
    assert gentlerain_merge(3.0, None) == 3.0
    assert gentlerain_merge(2.0, 5.0) == 5.0
    assert gentlerain_merge(None, None) is None


def test_gst_is_minus_inf_before_first_round():
    sim, dcs, _ = make_cluster()
    assert dcs["F"].gst() == float("-inf")


def test_gst_is_min_of_remote_lsts():
    sim, dcs, _ = make_cluster()
    sim.run(until=250.0)
    gst = dcs["F"].gst()
    # bounded by the furthest datacenter's stabilization stream (T: 110 ms)
    assert sim.now - 130.0 <= gst <= sim.now - 105.0


def test_remote_update_held_until_gst_passes():
    sim, dcs, _ = make_cluster()
    label = Label(LabelType.UPDATE, src="I/g0", ts=50.0, target="k",
                  origin_dc="I")
    payload = BaselinePayload(label=label, key="k", value_size=8,
                              created_at=50.0, stamp=50.0)
    sim.schedule(60.0, lambda: dcs["F"]._on_payload(payload))
    sim.run(until=100.0)
    assert dcs["F"].store.get("k") is None  # GST still < 50 (T is 110ms away)
    sim.run(until=300.0)
    assert dcs["F"].store.get("k") is not None


def test_visibility_latency_matches_furthest_dc():
    """The paper's key claim: GentleRain's visibility lower bound is the
    latency to the furthest datacenter, regardless of origin."""
    sim, dcs, metrics = make_cluster()
    from repro.datacenter.messages import ClientUpdate
    from repro.sim.process import Process

    class Rec(Process):
        def __init__(self):
            super().__init__(sim, "probe")

        def receive(self, sender, message):
            pass

    Rec().attach_network(dcs["I"].network)

    def write():
        # local update at I, replicated everywhere
        dcs["I"]._client_update("probe", ClientUpdate("c", "k", 8, None))

    sim.schedule(200.0, write)
    sim.run(until=600.0)
    # I->F is a 10 ms link but F must wait for T's stabilization (110 ms)
    samples = metrics.visibility.samples("I", "F")
    assert samples and samples[0] >= 100.0


def test_attach_blocks_until_gst_covers_stamp():
    sim, dcs, _ = make_cluster()
    from repro.datacenter.messages import ClientAttach, AttachOk

    class Probe:
        def __init__(self):
            self.replies = []

    # drive the frontend directly: register a recorder process
    from repro.sim.process import Process

    class Rec(Process):
        def __init__(self):
            super().__init__(sim, "probe")
            self.replies = []

        def receive(self, sender, message):
            self.replies.append(message)

    rec = Rec()
    rec.attach_network(dcs["F"].network)
    dcs["F"].network.place("probe", "F")
    sim.run(until=200.0)
    stamp = sim.now - 50.0  # recent timestamp: not yet stable
    dcs["F"]._client_attach("probe", ClientAttach("c", stamp))
    sim.run(until=sim.now + 20.0)
    assert rec.replies == []
    sim.run(until=sim.now + 300.0)
    assert rec.replies and isinstance(rec.replies[0], AttachOk)


def test_update_timestamp_exceeds_client_stamp():
    sim, dcs, _ = make_cluster()
    from repro.datacenter.messages import ClientUpdate
    from repro.sim.process import Process

    class Rec(Process):
        def __init__(self):
            super().__init__(sim, "probe")
            self.replies = []

        def receive(self, sender, message):
            self.replies.append(message)

    rec = Rec()
    rec.attach_network(dcs["I"].network)
    dcs["I"].network.place("probe", "I")
    dcs["I"]._client_update("probe", ClientUpdate("c", "k", 8, 1e5))
    sim.run(until=10.0)
    assert rec.replies[0].label > 1e5


def test_vector_entries_is_zero_scalar_metadata():
    sim, dcs, _ = make_cluster()
    assert dcs["I"].vector_entries() == 0
