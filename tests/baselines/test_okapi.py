"""Okapi baseline: hybrid clocks, knowledge matrix, global-cut GSV."""

from repro.baselines.base import BaselinePayload
from repro.baselines.cure import freeze_vector
from repro.baselines.okapi import HybridClock, OkapiDatacenter, OkapiStabMsg
from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.datacenter.messages import ClientUpdate
from repro.harness.runner import MetricsHub
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


def make_cluster(partial=False):
    sim = Simulator()
    model = LatencyModel(local_latency=0.25)
    model.set("I", "F", 10.0)
    model.set("I", "T", 100.0)
    model.set("F", "T", 110.0)
    network = Network(sim, latency_model=model, rng=RngRegistry(seed=2))
    replication = ReplicationMap(["I", "F", "T"])
    if partial:
        replication.set_group("g0", ("I", "F", "T"))
        replication.set_group("g1", ("I", "F"))
    metrics = MetricsHub(sim)
    dcs = {}
    for site in ("I", "F", "T"):
        dc = OkapiDatacenter(sim, site, site, replication, CostModel(),
                             PhysicalClock(sim), metrics=metrics)
        dc.attach_network(network)
        network.place(dc.name, site)
        dcs[site] = dc
    for dc in dcs.values():
        dc.start()
    return sim, dcs, metrics


class Probe(Process):
    def __init__(self, sim, network):
        super().__init__(sim, "probe")
        self.attach_network(network)

    def receive(self, sender, message):
        pass


def write(sim, dc, key="k"):
    probe = Probe(sim, dc.network)
    sim.schedule_at(sim.now, lambda: dc._client_update(
        probe.name, ClientUpdate("c", key, 8, None)))


def payload(ts, origin="I", key="k", deps=None):
    label = Label(LabelType.UPDATE, src=f"{origin}/g0", ts=ts, target=key,
                  origin_dc=origin)
    stamp = dict(deps or {})
    stamp[origin] = ts
    return BaselinePayload(label=label, key=key, value_size=8,
                           created_at=ts, stamp=freeze_vector(stamp))


# ---------------------------------------------------------------------------
# HybridClock
# ---------------------------------------------------------------------------

class FakePhysical:
    def __init__(self):
        self.value = 0.0

    def now(self):
        return self.value


def test_hlc_follows_physical_time_while_it_advances():
    phys = FakePhysical()
    hlc = HybridClock(phys)
    phys.value = 5.0
    assert hlc.timestamp() == 5.0
    phys.value = 9.0
    assert hlc.timestamp() == 9.0
    assert hlc.logical_bumps == 0


def test_hlc_stays_monotone_when_physical_steps_backward():
    phys = FakePhysical()
    hlc = HybridClock(phys)
    phys.value = 10.0
    first = hlc.timestamp()
    phys.value = 2.0  # resync yanked the clock back 8 ms
    second = hlc.timestamp()
    third = hlc.timestamp()
    assert first < second < third
    assert second - first < 1e-6  # logical ticks, not physical jumps
    assert hlc.logical_bumps == 2
    phys.value = 20.0  # physical time catches up and takes over again
    assert hlc.timestamp() == 20.0


def test_hlc_observe_merges_remote_timestamps():
    phys = FakePhysical()
    phys.value = 1.0
    hlc = HybridClock(phys)
    hlc.observe(50.0)  # a skewed remote clock runs far ahead
    ts = hlc.timestamp()
    assert ts > 50.0
    assert hlc.logical_bumps == 1
    hlc.observe(3.0)  # stale observations never move the clock back
    assert hlc.timestamp() > ts


def test_hlc_respects_at_least_floor():
    phys = FakePhysical()
    hlc = HybridClock(phys)
    assert hlc.timestamp(at_least=7.5) > 7.5


# ---------------------------------------------------------------------------
# knowledge matrix and GSV
# ---------------------------------------------------------------------------

def test_gsv_is_column_minimum_over_all_observers():
    sim, dcs, _ = make_cluster()
    dc = dcs["F"]
    dc._received["I"] = 10.0
    dc._matrix["I"] = {"I": 30.0}  # I's clock-floor promise
    dc._matrix["T"] = {"I": 4.0}
    assert dc.gsv("I") == 4.0  # T's knowledge lags: it bounds the cut
    dc._matrix["T"] = {"I": 25.0}
    assert dc.gsv("I") == 10.0  # now our own receipt is the bound


def test_stable_entry_own_dc_is_infinite():
    sim, dcs, _ = make_cluster()
    assert dcs["F"].stable_entry("F") == float("inf")
    assert dcs["F"].stable_entry("I") == float("-inf")


def test_stab_msg_floor_advances_receiver_knowledge_of_sender():
    """The liveness fix: the sender's own floor entry counts as received
    knowledge, so a datacenter replicating none of the sender's keys
    still lets the GSV advance."""
    sim, dcs, _ = make_cluster()
    row = freeze_vector({"T": 42.0})
    dcs["F"].receive("dc:T", OkapiStabMsg(origin_dc="T", entries=row))
    assert dcs["F"]._received["T"] == 42.0
    assert dcs["F"]._matrix["T"] == {"T": 42.0}


def test_payload_receipt_merges_hlc_and_knowledge():
    sim, dcs, _ = make_cluster()
    sim.run(until=50.0)
    p = payload(sim.now + 30.0, origin="I")  # future-stamped (skewed origin)
    dcs["F"]._on_payload(p)
    assert dcs["F"]._received["I"] == p.label.ts
    assert dcs["F"].hlc.timestamp() > p.label.ts  # observe() merged it


def test_visibility_is_global_cut_not_origin_latency():
    """Contrast with Cure (test_cure asserts < 40 ms on this cluster):
    Okapi's GSV waits for the slowest datacenter to confirm receipt, so
    I->F visibility is bounded by the T links, not the 10 ms I-F link."""
    sim, dcs, metrics = make_cluster()
    sim.run(until=300.0)
    write(sim, dcs["I"])
    sim.run(until=sim.now + 500.0)
    samples = metrics.visibility.samples("I", "F")
    assert samples
    assert samples[0] > 100.0
    assert dcs["F"].store.get("k") is not None


def test_partial_replication_keeps_gsv_live():
    """T replicates nothing from group g1, so it never receives g1
    payloads — the stabilization floor alone must keep g1 visibility at
    F advancing."""
    sim, dcs, _ = make_cluster(partial=True)
    sim.run(until=300.0)
    write(sim, dcs["I"], key="g1:p")
    sim.run(until=sim.now + 500.0)
    assert dcs["F"].store.get("g1:p") is not None
    assert dcs["T"].store.get("g1:p") is None  # not replicated there


def test_stabilization_cost_charged_to_one_partition():
    sim, dcs, _ = make_cluster()
    sim.run(until=100.0)
    busy = [partition.cpu.busy_time for partition in dcs["I"].store.partitions]
    assert busy[0] > busy[1]
