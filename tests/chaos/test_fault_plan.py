"""FaultPlan validation, JSON round-trips, and injector wiring."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (FORMAT_VERSION, FaultAction, FaultPlan, KINDS,
                               sequential)
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


# ---------------------------------------------------------------------------
# FaultAction validation
# ---------------------------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultAction(kind="meteor-strike", at=1.0)


def test_missing_required_args_rejected():
    with pytest.raises(ValueError, match="missing args"):
        FaultAction(kind="partition-link", at=1.0, args={"src": "a"})


def test_exactly_one_timing_field_required():
    with pytest.raises(ValueError, match="exactly one"):
        FaultAction(kind="crash-tree", at=1.0, at_choices=(1.0, 2.0))
    with pytest.raises(ValueError, match="exactly one"):
        FaultAction(kind="crash-tree")


def test_negative_time_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        FaultAction(kind="crash-tree", at=-1.0)
    with pytest.raises(ValueError, match="non-negative"):
        FaultAction(kind="crash-tree", at_choices=(-1.0, 2.0))


def test_at_choices_must_be_non_empty_and_ascending():
    with pytest.raises(ValueError, match="non-empty"):
        FaultAction(kind="crash-tree", at_choices=())
    with pytest.raises(ValueError, match="ascending"):
        FaultAction(kind="crash-tree", at_choices=(5.0, 5.0))
    with pytest.raises(ValueError, match="ascending"):
        FaultAction(kind="crash-tree", at_choices=(5.0, 3.0))


def test_every_kind_declares_its_args():
    # the dict drives both validation and the handler dispatch: a typo in
    # either place shows up as an AttributeError at fire time, so check
    # the handlers exist for every declared kind
    for kind in KINDS:
        handler = "_do_" + kind.replace("-", "_")
        assert hasattr(FaultInjector, handler), kind


# ---------------------------------------------------------------------------
# JSON interchange
# ---------------------------------------------------------------------------

def test_plan_json_round_trip():
    plan = sequential("round-trip", [
        FaultAction(kind="crash-serializer", at=6.0,
                    args={"tree": "sI", "epoch": 0}),
        FaultAction(kind="delay-spike", at_choices=(3.0, 9.0),
                    args={"src": "a", "dst": "b", "extra": 7.5}),
    ])
    loaded = FaultPlan.from_json(plan.to_json())
    assert loaded == plan
    assert loaded.name == "round-trip"
    assert loaded.actions[1].at_choices == (3.0, 9.0)


def test_plan_openness():
    closed = sequential("closed", [FaultAction(kind="crash-tree", at=1.0)])
    opened = sequential("open", [
        FaultAction(kind="crash-tree", at_choices=(1.0, 2.0))])
    assert not closed.is_open
    assert opened.is_open


def test_unsupported_format_version_rejected():
    text = sequential("v", [FaultAction(kind="crash-tree", at=1.0)]).to_json()
    stale = text.replace(f'"format_version": {FORMAT_VERSION}',
                         '"format_version": 999')
    with pytest.raises(ValueError, match="format version"):
        FaultPlan.from_json(stale)


# ---------------------------------------------------------------------------
# injector
# ---------------------------------------------------------------------------

class _Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, sender, message):
        self.received.append((self.sim.now, message))


def _deployment():
    sim = Simulator()
    net = Network(sim, default_latency=1.0, rng=RngRegistry(seed=3))
    a, b = _Recorder(sim, "a"), _Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    return sim, net, a, b


def test_apply_twice_rejected():
    sim, net, _, _ = _deployment()
    injector = FaultInjector(sim, net)
    plan = sequential("once", [FaultAction(kind="isolate", at=1.0,
                                           args={"process": "b"})])
    injector.apply(plan)
    with pytest.raises(RuntimeError, match="already applied"):
        injector.apply(plan)


def test_serializer_fault_without_service_fails_loudly():
    sim, net, _, _ = _deployment()
    injector = FaultInjector(sim, net)
    injector.apply(sequential("no-service", [
        FaultAction(kind="crash-serializer", at=1.0, args={"tree": "sI"})]))
    with pytest.raises(RuntimeError, match="no SaturnService"):
        sim.run()


def test_reconfigure_without_manager_fails_loudly():
    sim, net, _, _ = _deployment()
    injector = FaultInjector(sim, net)
    injector.apply(sequential("no-manager", [
        FaultAction(kind="reconfigure", at=1.0)]))
    with pytest.raises(RuntimeError, match="no ReconfigurationManager"):
        sim.run()


def test_isolate_and_rejoin_fire_at_plan_times():
    sim, net, a, b = _deployment()
    injector = FaultInjector(sim, net)
    injector.apply(sequential("blip", [
        FaultAction(kind="isolate", at=2.0, args={"process": "b"}),
        FaultAction(kind="rejoin", at=6.0, args={"process": "b"}),
    ]))
    sim.schedule(3.0, lambda: a.send("b", "held"))
    sim.schedule(7.0, lambda: a.send("b", "direct"))
    sim.run()
    # the message sent into the outage is held by the reliable link and
    # released at rejoin time (t=6 + 1 ms latency), ahead of later traffic
    assert b.received == [(7.0, "held"), (8.0, "direct")]
    assert injector.fired == [(2.0, "isolate", 2.0), (6.0, "rejoin", 6.0)]


def test_delay_spike_and_clear_round_trip():
    sim, net, a, b = _deployment()
    injector = FaultInjector(sim, net)
    injector.apply(sequential("spike", [
        FaultAction(kind="delay-spike", at=0.0,
                    args={"src": "a", "dst": "b", "extra": 9.0}),
        FaultAction(kind="clear-delay", at=5.0,
                    args={"src": "a", "dst": "b"}),
    ]))
    sim.schedule(1.0, lambda: a.send("b", "slow"))
    sim.schedule(11.5, lambda: a.send("b", "fast"))
    sim.run()
    assert b.received == [(11.0, "slow"), (12.5, "fast")]


def test_open_timing_defaults_to_first_choice_without_chooser():
    sim, net, _, b = _deployment()
    injector = FaultInjector(sim, net)
    injector.apply(sequential("open", [
        FaultAction(kind="isolate", at_choices=(4.0, 8.0),
                    args={"process": "b"})]))
    sim.run()
    assert injector.fired == [(4.0, "isolate", 4.0)]


def test_open_timing_resolved_through_the_chooser():
    sim, net, _, b = _deployment()

    class Chooser:
        asked = []

        def choose_fault(self, name, k):
            self.asked.append((name, k))
            return 1

    injector = FaultInjector(sim, net)
    injector.chooser = Chooser()
    injector.apply(sequential("open", [
        FaultAction(kind="isolate", at_choices=(4.0, 8.0),
                    args={"process": "b"})]))
    sim.run()
    assert Chooser.asked == [("open[0]:isolate", 2)]
    assert injector.fired == [(8.0, "isolate", 8.0)]
