"""Property tests for the fault machinery.

* Safety under arbitrary (bounded) fault plans: whatever combination of
  crashes, restarts, isolations, and delay spikes hits the chain3
  deployment, no sink ever violates causal delivery, the FIFO discipline,
  or genuine partial replication.  Liveness/completeness are deliberately
  *not* asserted here — a hostile plan without a matching recovery action
  (crash with no restart) legitimately strands parked labels forever.
* The degraded-mode drain order: sorting by ``Label.sort_key()`` (the
  ``(ts, source)`` total order of §3) is a linear extension of
  happens-before, so the timestamp fallback can never apply a dependent
  update before its dependency.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.mc.scenario import build_chain3
from repro.core.label import Label, LabelType
from repro.core.service import SaturnService
from repro.faults.plan import FaultAction, FaultPlan
from repro.faults.scenarios import _BEACON_PERIOD, _chaos_specs, _DETECTOR

TREES = ("sI", "sF", "sT")
EDGES = (("sI", "sF"), ("sF", "sT"))


# ---------------------------------------------------------------------------
# random fault plans never violate safety
# ---------------------------------------------------------------------------

@st.composite
def fault_plans(draw):
    """1-3 bounded fault events, each optionally paired with its repair."""
    actions = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(("crash", "isolate", "delay")))
        tree = draw(st.sampled_from(TREES))
        start = float(draw(st.integers(min_value=1, max_value=25)))
        repair_after = float(draw(st.integers(min_value=5, max_value=40)))
        repaired = draw(st.booleans())
        if kind == "crash":
            actions.append(FaultAction(kind="crash-serializer", at=start,
                                       args={"tree": tree, "epoch": 0}))
            if repaired:
                actions.append(FaultAction(
                    kind="restart-serializer", at=start + repair_after,
                    args={"tree": tree, "epoch": 0}))
        elif kind == "isolate":
            process = SaturnService.serializer_process_name(0, tree)
            actions.append(FaultAction(kind="isolate", at=start,
                                       args={"process": process}))
            if repaired:
                actions.append(FaultAction(kind="rejoin",
                                           at=start + repair_after,
                                           args={"process": process}))
        else:
            src, dst = draw(st.sampled_from(EDGES))
            extra = float(draw(st.integers(min_value=1, max_value=20)))
            actions.append(FaultAction(
                kind="delay-spike", at=start,
                args={"src": SaturnService.serializer_process_name(0, src),
                      "dst": SaturnService.serializer_process_name(0, dst),
                      "extra": extra}))
    return FaultPlan(name="random-faults", actions=tuple(actions))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=fault_plans())
def test_random_fault_plans_never_violate_causal_delivery(plan):
    scenario = build_chain3(
        "random-faults", horizon=160.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
        auto_failover=True, fault_plan=plan, min_expected_updates=0)
    scenario.run()
    report = scenario.monitor.report()
    assert not report.fifo_violations, [v.describe()
                                        for v in report.fifo_violations]
    assert scenario.monitor.crosscheck(scenario.log) == []
    assert scenario.partial_oracle.violations == []


@pytest.mark.parametrize("restart_at", [14.0, 15.0])
def test_fast_restart_plan_found_by_hypothesis_stays_fixed(restart_at):
    """Pinned falsifying examples: sT fail-recovers inside the suspicion
    window.  Two protocol holes hid here, both found by the random-plan
    property test:

    * before beacons carried incarnation numbers, the revived tree's first
      beacon read as a cleared false positive and the detector re-attached
      — the label batches swallowed by the dead serializer were lost for
      good (restart at 14);
    * even with incarnations, a restarted serializer used to wait a full
      beacon period before announcing itself, and in that window it would
      forward labels whose causal past died with it (y visible at T before
      its dependency a; restart at 15).  The first post-restart beacon is
      now sent immediately, ahead of any label on the FIFO channel.
    """
    plan = FaultPlan(name="fast-restart", actions=(
        FaultAction(kind="delay-spike", at=1.0,
                    args={"src": "ser:e0:sI", "dst": "ser:e0:sF",
                          "extra": 1.0}),
        FaultAction(kind="crash-serializer", at=5.0,
                    args={"tree": "sT", "epoch": 0}),
        FaultAction(kind="restart-serializer", at=restart_at,
                    args={"tree": "sT", "epoch": 0}),
    ))
    scenario = build_chain3(
        "fast-restart", horizon=160.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
        auto_failover=True, fault_plan=plan, min_expected_updates=5)
    scenario.run()
    assert scenario.monitor.crosscheck(scenario.log) == []
    assert scenario.log.check_completeness() == []
    assert scenario.failover.recoveries, "state loss must trigger recovery"


def test_short_isolation_plan_found_by_hypothesis_stays_fixed():
    """Pinned falsifying example: sI partitioned for a window barely past
    the detection threshold.  Under the original lossy-partition network
    model the label batches sent into the outage vanished with no failure
    signal at all (no crash, so no incarnation bump) — silent loss on a
    live channel is undetectable by *any* protocol, and the paper's model
    assumes reliable FIFO links.  Partitions now hold traffic and release
    it at heal time; the flood of stale-epoch labels after the emergency
    switch is ignored by the proxies (timestamp fallback owns them)."""
    plan = FaultPlan(name="short-isolation", actions=(
        FaultAction(kind="isolate", at=1.0,
                    args={"process": "ser:e0:sI"}),
        FaultAction(kind="rejoin", at=15.0,
                    args={"process": "ser:e0:sI"}),
    ))
    scenario = build_chain3(
        "short-isolation", horizon=160.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
        auto_failover=True, fault_plan=plan, min_expected_updates=5)
    scenario.run()
    assert scenario.monitor.crosscheck(scenario.log) == []
    assert scenario.log.check_completeness() == []
    assert scenario.failover.recoveries, "degradation must trigger recovery"
    assert scenario.service.current_epoch == 1


# ---------------------------------------------------------------------------
# (ts, source) order is a linear extension of happens-before
# ---------------------------------------------------------------------------

@st.composite
def causal_histories(draw):
    """A random forest of labels: each label may depend on an earlier one
    and then carries a strictly larger timestamp, the way a gear's clock
    always moves past everything it has observed."""
    count = draw(st.integers(min_value=2, max_value=14))
    labels, parents = [], {}
    for index in range(count):
        parent = (draw(st.one_of(st.none(),
                                 st.integers(min_value=0,
                                             max_value=index - 1)))
                  if index else None)
        increment = draw(st.floats(min_value=0.001, max_value=5.0,
                                   allow_nan=False, allow_infinity=False))
        base = labels[parent].ts if parent is not None else float(
            draw(st.integers(min_value=0, max_value=10)))
        label = Label(type=LabelType.UPDATE, src=f"gear-{index}",
                      ts=base + increment, target=f"k{index}",
                      origin_dc="I")
        if parent is not None:
            parents[label] = labels[parent]
        labels.append(label)
    shuffled = draw(st.permutations(labels))
    return shuffled, parents


@settings(deadline=None)
@given(history=causal_histories())
def test_ts_source_sort_respects_happens_before(history):
    shuffled, parents = history
    drained = sorted(shuffled, key=lambda label: label.sort_key())
    position = {label.src: index for index, label in enumerate(drained)}
    for child, parent in parents.items():
        assert position[parent.src] < position[child.src], (
            f"{child!r} drained before its dependency {parent!r}")
