"""Recovery regression: after the automatic emergency epoch change, remote
visibility must return to (near) the pre-fault steady state.

Uses the ``visibility-under-failure`` experiment at smoke scale: the whole
serializer tree crashes 100 ms after warmup, restarts 200 ms later, every
datacenter degrades to the timestamp total order in between, and the
restarted tree's beacons drive the coordinator's recovery.  The tolerance
(30 % + 10 ms) is deliberately loose — the post-recovery window is shorter
than the steady-state window, so its mean is noisier — but it fails
decisively if recovery strands the cluster in degraded mode (visibility
then rides the bulk-heartbeat period and roughly doubles)."""

from repro.harness.experiments import SMOKE, visibility_under_failure


def test_visibility_returns_to_steady_state_after_recovery():
    result = visibility_under_failure(SMOKE)

    assert result["recovered"], "automatic recovery never fired"
    epochs = [epoch for _, epoch in result["recovery_epochs"]]
    assert 1 in epochs
    # every datacenter went through a degraded span and closed it
    assert set(result["degraded_spans"]) == {"I", "F", "T"}
    for name, spans in result["degraded_spans"].items():
        assert spans, f"{name} never degraded"
        for degraded_at, reattached_at in spans:
            assert result["crash_at_ms"] <= degraded_at < reattached_at

    pre = result["pre_fault_visibility_ms"]
    post = result["post_recovery_visibility_ms"]
    assert pre > 0 and post > 0
    assert post <= pre * 1.3 + 10.0, (
        f"post-recovery visibility {post:.1f} ms vs pre-fault {pre:.1f} ms")
    # degraded mode kept updates visible (staler, but flowing)
    assert result["outage_visibility_ms"] > 0
    assert result["throughput"] > 0
