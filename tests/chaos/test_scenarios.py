"""Scripted chaos scenarios: the full degrade/recover arc stays causal,
deterministic, and replayable, and the CLI exposes it."""

import json

import pytest

from repro.analysis.mc.oracles import evaluate_oracles
from repro.datacenter.failover import ATTACHED, DEGRADED, SUSPECTED
from repro.faults.__main__ import main
from repro.faults.plan import FaultAction, FaultPlan
from repro.faults.scenarios import CHAOS_SCENARIOS, build_chaos_scenario


@pytest.fixture(scope="module")
def runs():
    """Build-and-run each scenario once per module; tests share the result."""
    cache = {}

    def get(name):
        if name not in cache:
            scenario = build_chaos_scenario(name)
            scenario.run()
            cache[name] = (scenario, evaluate_oracles(scenario))
        return cache[name]

    return get


@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_oracles_hold_across_the_fault(runs, name):
    scenario, violations = runs(name)
    assert violations == []
    # the whole causal chain completed despite the fault: a, b, p, y and
    # the degraded-mode write c
    keys = {record.key for record in scenario.log.updates.values()}
    assert keys == {"g0:a", "g0:b", "g0:y", "g0:c", "g1:p"}


@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_double_run_digests_are_bit_identical(runs, name):
    scenario, _ = runs(name)
    again = build_chaos_scenario(name)
    again.run()
    assert again.digest() == scenario.digest()


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        build_chaos_scenario("nope")


# ---------------------------------------------------------------------------
# serializer-crash: degrade -> park -> automatic emergency recovery
# ---------------------------------------------------------------------------

def test_serializer_crash_walks_the_whole_state_machine(runs):
    scenario, _ = runs("serializer-crash")
    detector = scenario.datacenters["I"].failover
    assert [state for _, state in detector.transitions] == [
        SUSPECTED, DEGRADED, ATTACHED]
    assert detector.state == ATTACHED
    (degraded_at, reattached_at), = detector.degraded_spans
    assert degraded_at < reattached_at


def test_serializer_crash_recovers_via_emergency_epoch_change(runs):
    scenario, _ = runs("serializer-crash")
    assert scenario.failover.recoveries, "coordinator never fired"
    _, epoch = scenario.failover.recoveries[0]
    assert epoch == 1
    assert scenario.service.current_epoch == 1
    # recovery replays the parked backlog through the new tree
    assert scenario.datacenters["I"].sink.replays >= 1
    assert not scenario.datacenters["I"].saturn_down


def test_serializer_crash_fired_both_plan_actions(runs):
    scenario, _ = runs("serializer-crash")
    assert [(kind, at) for _, kind, at in scenario.injector.fired] == [
        ("crash-serializer", 6.0), ("restart-serializer", 40.0)]


# ---------------------------------------------------------------------------
# root-partition: isolation of the root, probe-driven recovery
# ---------------------------------------------------------------------------

def test_root_partition_degrades_f_and_recovers(runs):
    scenario, _ = runs("root-partition")
    detector = scenario.datacenters["F"].failover
    states = [state for _, state in detector.transitions]
    assert DEGRADED in states
    assert detector.state == ATTACHED
    assert scenario.failover.recoveries
    assert scenario.service.current_epoch == 1


# ---------------------------------------------------------------------------
# crash-during-epoch-change: stuck fast path escalates, no coordinator
# ---------------------------------------------------------------------------

def test_crash_during_epoch_change_escalates_stuck_transitions(runs):
    scenario, _ = runs("crash-during-epoch-change")
    assert scenario.failover is None  # no automatic recovery wired
    for name, dc in scenario.datacenters.items():
        assert dc.proxy.transitions_escalated >= 1, name
    assert scenario.service.current_epoch == 1


# ---------------------------------------------------------------------------
# CLI (python -m repro.faults / saturn-repro faults)
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in CHAOS_SCENARIOS:
        assert name in out


def test_cli_scenario_with_artifacts(tmp_path, capsys):
    json_out = tmp_path / "artifacts" / "summary.json"
    plan_out = tmp_path / "plan.json"
    code = main(["--scenario", "serializer-crash", "--check-determinism",
                 "--json", str(json_out), "--plan-out", str(plan_out)])
    capsys.readouterr()
    assert code == 0
    payload = json.loads(json_out.read_text())
    assert payload["violations"] == []
    assert payload["deterministic"] is True
    assert payload["recoveries"] == [[pytest.approx(42.25, abs=5.0), 1]]
    plan = FaultPlan.from_json(plan_out.read_text())
    assert plan.name == "serializer-crash"
    assert [action.kind for action in plan.actions] == [
        "crash-serializer", "restart-serializer"]


def test_cli_runs_external_plan(tmp_path, capsys):
    plan = FaultPlan(name="external", actions=(
        FaultAction(kind="crash-serializer", at=6.0,
                    args={"tree": "sI", "epoch": 0}),
        FaultAction(kind="restart-serializer", at=40.0,
                    args={"tree": "sI", "epoch": 0}),
    ))
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert main(["--plan", str(path)]) == 0
    assert "violations : 0" in capsys.readouterr().out


def test_cli_requires_exactly_one_input(capsys):
    with pytest.raises(SystemExit):
        main([])
    with pytest.raises(SystemExit):
        main(["--scenario", "serializer-crash", "--plan", "x.json"])
    capsys.readouterr()
