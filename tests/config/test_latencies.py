"""Table 1: EC2 inter-region latencies."""

import pytest

from repro.config.latencies import (EC2_LATENCIES, EC2_REGIONS, ec2_latency,
                                    ec2_latency_model)


def test_seven_regions():
    assert len(EC2_REGIONS) == 7
    assert EC2_REGIONS == ["NV", "NC", "O", "I", "F", "T", "S"]


def test_all_pairs_present():
    n = len(EC2_REGIONS)
    assert len(EC2_LATENCIES) == n * (n - 1) // 2


def test_values_from_the_paper():
    assert ec2_latency("I", "F") == 10.0
    assert ec2_latency("T", "S") == 52.0
    assert ec2_latency("I", "S") == 154.0
    assert ec2_latency("F", "S") == 161.0
    assert ec2_latency("NV", "NC") == 37.0
    assert ec2_latency("NC", "O") == 10.0
    assert ec2_latency("I", "T") == 107.0


def test_symmetry_and_self():
    assert ec2_latency("S", "T") == ec2_latency("T", "S")
    assert ec2_latency("I", "I") == 0.0


def test_unknown_region_raises():
    with pytest.raises(KeyError):
        ec2_latency("I", "MARS")


def test_model_matches_table():
    model = ec2_latency_model(local_latency=0.5)
    for (a, b), value in EC2_LATENCIES.items():
        assert model.get(a, b) == value
    assert model.get("I", "I") == 0.5
