"""Definition 1 (optimal visibility time) and Definition 2 (mismatch)."""

import pytest

from repro.config.objective import (optimal_visibility_time,
                                    pair_weights_from_replication,
                                    weighted_mismatch)
from repro.core.replication import ReplicationMap
from repro.core.tree import TreeTopology


def lat(a, b):
    table = {frozenset(("A", "B")): 10.0, frozenset(("A", "C")): 50.0,
             frozenset(("B", "C")): 40.0}
    return 0.0 if a == b else table[frozenset((a, b))]


def test_optimal_visibility_time_without_deps():
    assert optimal_visibility_time(100.0, "A", "B", lat) == 110.0


def test_optimal_visibility_time_dominated_by_dependency():
    # Definition 1: vt = max(arrival, max of causal past's vts)
    assert optimal_visibility_time(100.0, "A", "B", lat,
                                   dependency_times=[130.0]) == 130.0
    assert optimal_visibility_time(100.0, "A", "B", lat,
                                   dependency_times=[105.0]) == 110.0


def test_weighted_mismatch_zero_for_perfect_tree():
    # two DCs, one serializer co-located with A and zero local latency
    topo = TreeTopology(serializer_sites={"s0": "A"}, edges=[],
                        attachments={"A": "s0", "B": "s0"})
    assert weighted_mismatch(topo, {"A": "A", "B": "B"}, lat) == 0.0


def test_weighted_mismatch_counts_detours():
    # chain forces A->C through B: path 50 via B = 10+40 = 50 = direct; but
    # with serializer at B only, A->B = 10 and B->C = 40 stay optimal too
    topo = TreeTopology(serializer_sites={"s0": "B"}, edges=[],
                        attachments={"A": "s0", "B": "s0", "C": "s0"})
    sites = {x: x for x in "ABC"}
    total = weighted_mismatch(topo, sites, lat)
    # A->C achieved = 10 + 40 = 50 = optimal; A<->B, B<->C optimal; so 0
    assert total == pytest.approx(0.0)


def test_weighted_mismatch_with_weights_and_delays():
    topo = TreeTopology(
        serializer_sites={"s0": "A", "s1": "B"}, edges=[("s0", "s1")],
        attachments={"A": "s0", "B": "s1"}, delays={("s0", "s1"): 5.0})
    sites = {"A": "A", "B": "B"}
    # A->B achieved 15 vs optimal 10 -> 5; B->A achieved 10 -> 0
    assert weighted_mismatch(topo, sites, lat) == pytest.approx(5.0)
    weights = {("A", "B"): 2.0, ("B", "A"): 1.0}
    assert weighted_mismatch(topo, sites, lat, weights) == pytest.approx(10.0)


def test_weighted_mismatch_with_separate_bulk_latency():
    topo = TreeTopology(serializer_sites={"s0": "A"}, edges=[],
                        attachments={"A": "s0", "B": "s0"})
    sites = {"A": "A", "B": "B"}

    def bulk(a, b):
        return 0.0 if a == b else 25.0

    # metadata path = 10, bulk = 25 -> mismatch 15 per direction
    assert weighted_mismatch(topo, sites, lat,
                             bulk_latency=bulk) == pytest.approx(30.0)


def test_pair_weights_from_replication():
    replication = ReplicationMap(["A", "B", "C"])
    replication.set_group("g1", ["A", "B"])
    replication.set_group("g2", ["A", "B", "C"])
    weights = pair_weights_from_replication(replication)
    assert weights[("A", "B")] == 2.0
    assert weights[("A", "C")] == 1.0
    assert weights[("B", "C")] == 1.0
    assert ("A", "A") not in weights


def test_pair_weights_full_replication_defaults_to_one():
    replication = ReplicationMap(["A", "B"])
    weights = pair_weights_from_replication(replication)
    assert weights[("A", "B")] == 1.0
