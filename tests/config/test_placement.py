"""Algorithm 3: tree enumeration, beam search, fusion."""

import pytest

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.config.placement import (enumerate_insertions, find_configuration,
                                    fuse_topology)
from repro.core.tree import TreeTopology


def leaf_count(tree):
    if tree[0] == "leaf":
        return 1
    return leaf_count(tree[1]) + leaf_count(tree[2])


def leaves(tree):
    if tree[0] == "leaf":
        return [tree[1]]
    return leaves(tree[1]) + leaves(tree[2])


def test_insertion_count_matches_isomorphism_classes():
    """Inserting into a tree of f leaves yields 2f-1 new trees (§5.5)."""
    tree = ("node", ("leaf", "A"), ("leaf", "B"))
    for f in range(2, 7):
        variants = enumerate_insertions(tree, f"X{f}")
        assert len(variants) == 2 * f - 1
        tree = variants[0]


def test_insertions_preserve_leaves_and_add_one():
    tree = ("node", ("leaf", "A"), ("leaf", "B"))
    for variant in enumerate_insertions(tree, "C"):
        assert sorted(leaves(variant)) == ["A", "B", "C"]
        assert leaf_count(variant) == 3


def test_find_configuration_small_is_sensible():
    sites = ["I", "F", "T"]
    solved = find_configuration(sites, {s: s for s in sites}, ec2_latency)
    topo = solved.topology
    assert sorted(topo.attachments) == sorted(sites)
    # I and F are 10 ms apart: their metadata path must stay cheap
    path = topo.path_latency("I", "F", ec2_latency, {s: s for s in sites})
    assert path <= 30.0


def test_find_configuration_requires_two_dcs():
    with pytest.raises(ValueError):
        find_configuration(["I"], {"I": "I"}, ec2_latency)


def test_find_configuration_seven_regions_close_regions_stay_close():
    sites = list(EC2_REGIONS)
    solved = find_configuration(sites, {s: s for s in sites}, ec2_latency,
                                beam_width=4)
    dc_sites = {s: s for s in sites}
    for a, b in (("I", "F"), ("NC", "O")):
        achieved = solved.topology.path_latency(a, b, ec2_latency, dc_sites)
        assert achieved <= ec2_latency(a, b) + 15.0


def test_weights_pull_correlated_dcs_together():
    """With T<->S carrying all the weight, their metadata path must be
    near-optimal even if other pairs suffer."""
    sites = list(EC2_REGIONS)
    weights = {(a, b): 0.05 for a in sites for b in sites if a != b}
    weights[("T", "S")] = 50.0
    weights[("S", "T")] = 50.0
    solved = find_configuration(sites, {s: s for s in sites}, ec2_latency,
                                weights=weights, beam_width=4)
    achieved = solved.topology.path_latency("T", "S", ec2_latency,
                                            {s: s for s in sites})
    assert achieved <= ec2_latency("T", "S") + 10.0


def test_fuse_topology_merges_colocated_serializers():
    topo = TreeTopology(
        serializer_sites={"s0": "I", "s1": "I", "s2": "F"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"I": "s0", "F": "s2", "T": "s1"})
    fused = fuse_topology(topo)
    assert len(fused.serializer_sites) == 2
    assert sorted(fused.attachments) == ["F", "I", "T"]
    # fusing must preserve validity
    assert len(fused.edges) == len(fused.serializer_sites) - 1


def test_fuse_topology_respects_delays():
    topo = TreeTopology(
        serializer_sites={"s0": "I", "s1": "I"},
        edges=[("s0", "s1")],
        attachments={"I": "s0", "F": "s1"},
        delays={("s0", "s1"): 5.0})
    fused = fuse_topology(topo)
    assert len(fused.serializer_sites) == 2  # delayed edge not fused


def test_fuse_topology_noop_when_nothing_to_fuse():
    topo = TreeTopology(
        serializer_sites={"s0": "I", "s1": "F"},
        edges=[("s0", "s1")],
        attachments={"I": "s0", "F": "s1"})
    assert fuse_topology(topo) is topo
