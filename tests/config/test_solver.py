"""Per-tree solver: placement and LP-optimal artificial delays."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.objective import weighted_mismatch
from repro.config.solver import (TreeShape, optimize_delays, solve_tree)
from repro.core.tree import TreeTopology


def lat(a, b):
    table = {frozenset(("A", "B")): 10.0, frozenset(("B", "C")): 10.0,
             frozenset(("A", "C")): 80.0}
    return 0.0 if a == b else table[frozenset((a, b))]


SITES = {"A": "A", "B": "B", "C": "C"}


def chain_topology():
    return TreeTopology(
        serializer_sites={"s0": "A", "s1": "B", "s2": "C"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"A": "s0", "B": "s1", "C": "s2"})


def test_tree_shape_to_topology():
    shape = TreeShape(internal_nodes=("s0",), edges=(),
                      attachments=(("A", "s0"), ("B", "s0")))
    topo = shape.to_topology({"s0": "A"})
    assert topo.attachments == {"A": "s0", "B": "s0"}
    assert topo.serializer_sites == {"s0": "A"}


def test_optimize_delays_fills_slow_bulk_path():
    """Bulk A->C is 80 ms but the metadata path is 20 ms: with weights
    favouring the A->C and B->C paths the solver delays A's labels."""
    weights = {("A", "C"): 3.0, ("C", "A"): 3.0,
               ("B", "C"): 2.0, ("C", "B"): 2.0,
               ("A", "B"): 1.0, ("B", "A"): 1.0}
    delays = optimize_delays(chain_topology(), SITES, lat, weights)
    assert delays.get(("s0", "s1")) == pytest.approx(60.0, abs=1.0)
    assert ("s1", "s2") not in delays


def test_optimize_delays_never_negative():
    delays = optimize_delays(chain_topology(), SITES, lat)
    assert all(v >= 0 for v in delays.values())


def test_delays_never_worsen_objective():
    topo = chain_topology()
    weights = {("A", "C"): 3.0, ("C", "A"): 3.0,
               ("B", "C"): 2.0, ("C", "B"): 2.0,
               ("A", "B"): 1.0, ("B", "A"): 1.0}
    before = weighted_mismatch(topo, SITES, lat, weights)
    delays = optimize_delays(topo, SITES, lat, weights)
    after = weighted_mismatch(topo.with_delays(delays), SITES, lat, weights)
    assert after <= before + 1e-6


def test_optimize_delays_no_edges():
    star = TreeTopology.star("A", SITES)
    assert optimize_delays(star, SITES, lat) == {}


def test_solve_tree_places_serializers_at_good_sites():
    shape = TreeShape(
        internal_nodes=("s0", "s1"), edges=(("s0", "s1"),),
        attachments=(("A", "s0"), ("B", "s0"), ("C", "s1")))
    solved = solve_tree(shape, SITES, ["A", "B", "C"], lat)
    assert solved.score >= 0
    # with a perfect metric the solver should not leave both serializers
    # at the same worst-case site
    sites_used = set(solved.topology.serializer_sites.values())
    assert sites_used <= {"A", "B", "C"}


def test_solve_tree_score_matches_objective():
    shape = TreeShape(
        internal_nodes=("s0",), edges=(),
        attachments=(("A", "s0"), ("B", "s0"), ("C", "s0")))
    solved = solve_tree(shape, SITES, ["A", "B", "C"], lat)
    recomputed = weighted_mismatch(solved.topology, SITES, lat)
    assert solved.score == pytest.approx(recomputed)


def test_greedy_fallback_close_to_lp():
    from repro.config import solver as solver_module
    topo = chain_topology()
    weights = {("A", "C"): 3.0, ("C", "A"): 3.0,
               ("B", "C"): 2.0, ("C", "B"): 2.0,
               ("A", "B"): 1.0, ("B", "A"): 1.0}
    lp = optimize_delays(topo, SITES, lat, weights)
    directed = []
    for a, b in topo.edges:
        directed.extend([(a, b), (b, a)])
    pairs = []
    edge_index = {e: i for i, e in enumerate(directed)}
    for i in SITES:
        for j in SITES:
            if i == j:
                continue
            base = topo.path_latency(i, j, lat, SITES)
            path = topo.serializer_path(i, j)
            edges = [edge_index[(a, b)] for a, b in zip(path, path[1:])]
            pairs.append((weights[(i, j)], lat(i, j) - base, edges))
    greedy = solver_module._solve_delays_greedy(directed, pairs)

    def objective(delays):
        return weighted_mismatch(topo.with_delays(delays), SITES, lat, weights)

    # the fallback is approximate (coordinate descent can stop in a local
    # optimum) but must clearly beat doing nothing and stay near the LP
    assert objective(greedy) < objective({}) * 0.75
    assert objective(greedy) <= objective(lp) * 2.0
