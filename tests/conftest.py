"""Shared fixtures and mini-cluster helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.datacenter.datacenter import DatacenterParams, SaturnDatacenter
from repro.harness.runner import MetricsHub
from repro.sim.clock import ClockFactory
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(seed=7)


def small_latency_model() -> LatencyModel:
    """Three sites with asymmetric distances (I close to F, T far)."""
    model = LatencyModel(local_latency=0.25)
    model.set("I", "F", 10.0)
    model.set("I", "T", 100.0)
    model.set("F", "T", 110.0)
    return model


class MiniCluster:
    """Hand-wired 3-datacenter Saturn deployment for component tests."""

    def __init__(self, consistency: str = "saturn",
                 topology: TreeTopology = None,
                 replication: ReplicationMap = None,
                 sink_batch_period: float = 1.0,
                 sink_heartbeat_period: float = 10.0,
                 bulk_heartbeat_period: float = 5.0,
                 parallel_concurrent_apply: bool = True,
                 ping_period: float = 0.0,
                 max_skew: float = 0.5,
                 seed: int = 7) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed=seed)
        self.sites = ["I", "F", "T"]
        self.network = Network(self.sim, latency_model=small_latency_model(),
                               default_latency=0.25, rng=self.rng)
        self.metrics = MetricsHub(self.sim)
        self.replication = replication or ReplicationMap(self.sites)
        clocks = ClockFactory(self.sim, self.rng, max_skew=max_skew)
        self.cost = CostModel()
        self.service = None
        if consistency == "saturn":
            self.service = SaturnService(self.sim, self.network,
                                         self.replication)
            topology = topology or TreeTopology.star(
                "I", {s: s for s in self.sites})
            self.service.install_tree(topology, epoch=0)
        self.dcs = {}
        for site in self.sites:
            params = DatacenterParams(
                name=site, site=site, num_partitions=2,
                consistency=consistency,
                sink_batch_period=sink_batch_period,
                sink_heartbeat_period=sink_heartbeat_period,
                bulk_heartbeat_period=bulk_heartbeat_period,
                parallel_concurrent_apply=parallel_concurrent_apply,
                ping_period=ping_period)
            dc = SaturnDatacenter(self.sim, params, self.replication,
                                  self.cost, clocks.create(),
                                  metrics=self.metrics)
            dc.attach_network(self.network)
            self.network.place(dc.name, site)
            dc.saturn = self.service
            self.dcs[site] = dc

    def start(self) -> None:
        for dc in self.dcs.values():
            dc.start()

    def run(self, until: float) -> None:
        self.sim.run(until=until)


@pytest.fixture
def mini_cluster() -> MiniCluster:
    cluster = MiniCluster()
    cluster.start()
    return cluster
