"""Unit tests for chain replication of serializer groups (§6.1)."""

import pytest

from repro.core.chain import ChainGroup
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


def make_chain(replicas=3):
    sim = Simulator()
    network = Network(sim, default_latency=0.5, rng=RngRegistry(seed=4))
    delivered = []
    chain = ChainGroup(sim, network, "ser0", replicas,
                       deliver=delivered.append)
    return sim, chain, delivered


def test_requires_a_replica():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=1))
    with pytest.raises(ValueError):
        ChainGroup(sim, network, "c", 0, deliver=lambda item: None)


def test_single_replica_delivers():
    sim, chain, delivered = make_chain(replicas=1)
    chain.submit("a")
    sim.run()
    assert delivered == ["a"]


def test_delivery_preserves_order():
    sim, chain, delivered = make_chain()
    for i in range(20):
        chain.submit(i)
    sim.run()
    assert delivered == list(range(20))


def test_acks_clear_buffers():
    sim, chain, delivered = make_chain()
    for i in range(5):
        chain.submit(i)
    sim.run()
    for replica in chain.replicas:
        assert replica.unacked == {}


def test_head_crash_no_loss():
    sim, chain, delivered = make_chain()
    for i in range(10):
        chain.submit(i)
    # crash the head before anything propagates
    chain.crash_replica(0)
    for i in range(10, 15):
        chain.submit(i)
    sim.run()
    # items accepted by the (old) head before its crash may be lost —
    # fail-stop — but everything the new head saw is delivered in order
    assert delivered[-5:] == list(range(10, 15))
    assert delivered == sorted(delivered)


def test_middle_crash_retransmits_unacked():
    sim, chain, delivered = make_chain(replicas=3)
    for i in range(10):
        chain.submit(i)
    sim.run(until=0.6)  # items sit unacked at the middle replica
    chain.crash_replica(1)
    sim.run()
    assert delivered == list(range(10))


def test_tail_crash_promotes_predecessor():
    sim, chain, delivered = make_chain(replicas=3)
    for i in range(10):
        chain.submit(i)
    sim.run(until=0.6)
    chain.crash_replica(2)
    sim.run()
    assert delivered == list(range(10))
    assert chain.tail is chain.replicas[1]


def test_no_duplicate_deliveries_after_crash():
    sim, chain, delivered = make_chain(replicas=3)
    for i in range(10):
        chain.submit(i)
    sim.run(until=1.1)  # some items already delivered, acks in flight
    chain.crash_replica(1)
    sim.run()
    assert delivered == list(range(10))


def test_alive_count_and_exhaustion():
    sim, chain, delivered = make_chain(replicas=2)
    assert chain.alive_count() == 2
    chain.crash_replica(0)
    chain.crash_replica(1)
    assert chain.alive_count() == 0
    with pytest.raises(RuntimeError):
        _ = chain.head
