"""Epoch changes must invalidate the static-tree memoizations.

Both the interest sets cached on :class:`ReplicationMap` and the routing
views cached on :class:`TreeTopology` assume the tree never changes.  A
repaired topology is often produced by *mutating a copy in place* (the
failure path: drop the dead serializer, re-attach its datacenters), so
``SaturnService.install_tree`` has to rebuild both on every epoch change —
serializers resolve their hot-path routing from the memo at construction,
and a stale view silently detaches a datacenter from the new tree."""

from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry

SITES = ("I", "F", "T")


def _chain():
    return TreeTopology(
        serializer_sites={"sI": "I", "sF": "F", "sT": "T"},
        edges=[("sI", "sF"), ("sF", "sT")],
        attachments={"I": "sI", "F": "sF", "T": "sT"})


def _service():
    sim = Simulator()
    network = Network(sim, latency_model=LatencyModel(local_latency=0.25),
                      default_latency=0.25, rng=RngRegistry(seed=1))
    replication = ReplicationMap(list(SITES))
    replication.set_group("g0", SITES)
    service = SaturnService(sim, network, replication)
    service.install_tree(_chain(), epoch=0)
    return service, replication


def test_install_tree_rebuilds_routing_of_an_in_place_repaired_topology():
    service, _ = _service()

    repaired = _chain()
    # warm the memo the way planners do before deciding on the repair
    assert "T" not in repaired.routing("sF").attached
    # the repair: sT is gone, its leaf re-attaches to sF
    repaired.attachments["T"] = "sF"
    del repaired.serializer_sites["sT"]
    repaired.edges.remove(("sF", "sT"))

    service.install_tree(repaired, epoch=1)

    # without the rebuild the epoch-1 sF serializer is constructed from
    # the stale view and never delivers to T
    new_sf = service.serializers(1)["sF"]
    assert [dc for dc, _ in new_sf._attached] == ["F", "T"]
    assert "T" in repaired.routing("sF").attached
    assert repaired.reachable_dcs("sI", "sF") == frozenset({"F", "T"})


def test_install_tree_drops_stale_interest_sets():
    service, replication = _service()
    replication.interest_cache[("stale", "sentinel")] = frozenset({"I"})

    repaired = _chain()
    service.install_tree(repaired, epoch=1)

    assert ("stale", "sentinel") not in replication.interest_cache
