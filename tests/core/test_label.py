"""Unit and property tests for Saturn labels (§3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.label import Label, LabelType, label_max


def make(ts, src="dc1/g0", type_=LabelType.UPDATE, target="k"):
    return Label(type_, src=src, ts=ts, target=target, origin_dc="dc1")


def test_comparability_by_timestamp():
    assert make(1.0) < make(2.0)
    assert make(2.0) > make(1.0)


def test_comparability_ties_broken_by_source():
    a = make(1.0, src="dcA/g0")
    b = make(1.0, src="dcB/g0")
    assert a < b


def test_equality_is_by_ts_and_src():
    a = make(1.0, target="x")
    b = make(1.0, target="y")
    assert a == b  # same (ts, src) — identity ignores payload fields
    assert hash(a) == hash(b)


def test_uniqueness_of_ts_src_pairs():
    labels = {make(float(i), src=f"dc{j}/g0")
              for i in range(10) for j in range(3)}
    assert len(labels) == 30


def test_type_predicates():
    assert make(1.0).is_update()
    assert not make(1.0).is_migration()
    migration = make(1.0, type_=LabelType.MIGRATION, target="F")
    assert migration.is_migration()


def test_label_max_handles_none():
    a = make(1.0)
    assert label_max(None, a) is a
    assert label_max(a, None) is a
    assert label_max(None, None) is None


def test_label_max_returns_greater():
    a, b = make(1.0), make(2.0)
    assert label_max(a, b) is b
    assert label_max(b, a) is b


def test_labels_are_immutable():
    with pytest.raises(AttributeError):
        make(1.0).ts = 5.0


def test_comparison_with_non_label_not_supported():
    assert make(1.0).__lt__(42) is NotImplemented
    assert make(1.0) != 42


def test_repr_mentions_fields():
    text = repr(make(1.5, target="key9"))
    assert "key9" in text and "1.5" in text


label_strategy = st.builds(
    make,
    ts=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    src=st.sampled_from(["a/g0", "b/g0", "c/g1"]))


@given(label_strategy, label_strategy)
def test_total_order_antisymmetry(a, b):
    assert (a < b) or (b < a) or (a == b)
    if a < b:
        assert not b < a


@given(label_strategy, label_strategy, label_strategy)
def test_total_order_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@given(label_strategy, label_strategy)
def test_label_max_commutative(a, b):
    assert label_max(a, b) == label_max(b, a)


@given(st.lists(label_strategy, min_size=1, max_size=20))
def test_sorting_matches_sort_key(labels):
    assert sorted(labels) == sorted(labels, key=lambda l: l.sort_key())
