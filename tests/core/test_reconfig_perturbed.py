"""Epoch changes under perturbed schedules (§6.2).

The reconfiguration scenarios flip the serializer tree at t=12 ms with the
scripted workload's labels mid-flight.  Under randomized priorities and
injected tree-edge delays, no schedule may lose or reorder those labels:
the completeness and causality oracles check exactly that, and the
transition itself must finish before the horizon.
"""

import pytest

from repro.analysis.mc.checker import ModelChecker
from repro.analysis.mc.controller import ScheduleController
from repro.analysis.mc.scenario import build_scenario
from repro.analysis.mc.strategies import (DelayInjectionStrategy,
                                          FifoStrategy, PctStrategy)


def test_fast_path_reconfiguration_completes_and_stays_causal():
    scenario = build_scenario("reconfig-chain3")
    scenario.run()
    from repro.analysis.mc.oracles import evaluate_oracles
    assert evaluate_oracles(scenario) == []
    assert scenario.manager is not None
    assert scenario.manager.complete(), "not every DC adopted the new epoch"
    assert scenario.service.current_epoch == 1


def test_emergency_reconfiguration_completes_and_stays_causal():
    scenario = build_scenario("reconfig-emergency")
    scenario.run()
    from repro.analysis.mc.oracles import evaluate_oracles
    assert evaluate_oracles(scenario) == []
    assert scenario.manager is not None
    assert scenario.manager.complete()


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_fast_path_under_randomized_priorities(seed):
    outcome = ModelChecker("reconfig-chain3").run_once(PctStrategy(seed))
    assert outcome.ok, outcome.violations


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_fast_path_under_injected_tree_delays(seed):
    """Stretch serializer-edge sends around the epoch flip: in-flight
    labels must still arrive exactly once, in causal order."""
    outcome = ModelChecker("reconfig-chain3").run_once(
        DelayInjectionStrategy(seed, bound=3.0, injection_rate=0.5),
        use_delays=True)
    assert outcome.ok, outcome.violations


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_emergency_path_under_injected_tree_delays(seed):
    outcome = ModelChecker("reconfig-emergency").run_once(
        DelayInjectionStrategy(seed, bound=3.0, injection_rate=0.5),
        use_delays=True)
    assert outcome.ok, outcome.violations


def test_reconfiguration_completes_under_perturbation():
    scenario = build_scenario("reconfig-chain3")
    controller = ScheduleController(
        DelayInjectionStrategy(9, bound=3.0, injection_rate=0.5),
        delay_links=scenario.delay_links)
    controller.install(scenario.sim, scenario.network)
    scenario.run()
    assert scenario.manager is not None
    assert scenario.manager.complete()


def test_exhaustive_ties_over_the_epoch_change():
    result = ModelChecker("reconfig-chain3").sweep_exhaustive(
        depth=2, max_runs=40)
    assert result.ok, [o.violations for o in result.counterexamples]


def test_scheduled_reconfiguration_fires_at_time():
    # Scripted epoch changes are driven from the harness via the kernel
    # scheduler; ReconfigurationManager itself exposes no absolute-time
    # scheduling API (see test_manager_has_no_kernel_scheduling_api).
    scenario = build_scenario("chain3")
    from repro.core.reconfig import ReconfigurationManager
    from repro.core.tree import TreeTopology
    manager = ReconfigurationManager(
        scenario.service, list(scenario.datacenters.values()))
    new_topology = TreeTopology(
        serializer_sites={"sI": "I", "sF": "F", "sT": "T"},
        edges=[("sF", "sI"), ("sI", "sT")],
        attachments={"I": "sI", "F": "sF", "T": "sT"},
    )
    scenario.sim.schedule_at(20.0, lambda: manager.reconfigure(new_topology))
    scenario.sim.run(until=15.0)
    assert scenario.service.current_epoch == 0
    scenario.sim.run(until=scenario.horizon)
    assert scenario.service.current_epoch == 1
    assert manager.complete()


def test_manager_has_no_kernel_scheduling_api():
    # Regression for ARCH004: protocol code must not wrap sim.schedule_at.
    # The old schedule_reconfiguration helper bound the manager to the
    # discrete-event kernel's absolute clock; callers now schedule from
    # the harness layer instead.
    from repro.core.reconfig import ReconfigurationManager
    assert not hasattr(ReconfigurationManager, "schedule_reconfiguration")
