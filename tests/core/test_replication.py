"""Unit tests for the replication map (genuine partial replication)."""

import pytest

from repro.core.replication import ReplicationMap


def test_requires_datacenters():
    with pytest.raises(ValueError):
        ReplicationMap([])


def test_default_is_full_replication():
    rm = ReplicationMap(["A", "B", "C"])
    assert rm.replicas("anything") == frozenset({"A", "B", "C"})
    assert rm.average_replication_degree() == 3.0


def test_group_key_parsing():
    assert ReplicationMap.group_of("gX.1:42") == "gX.1"
    assert ReplicationMap.group_of("plainkey") is None
    assert ReplicationMap.group_of("x:1") is None  # must start with 'g'


def test_set_group_and_lookup():
    rm = ReplicationMap(["A", "B", "C"])
    rm.set_group("g1", ["A", "B"])
    assert rm.replicas("g1:0") == frozenset({"A", "B"})
    assert rm.is_replicated_at("g1:0", "A")
    assert not rm.is_replicated_at("g1:0", "C")


def test_unknown_group_defaults_to_full():
    rm = ReplicationMap(["A", "B"])
    rm.set_group("g1", ["A"])
    assert rm.replicas("g999:0") == frozenset({"A", "B"})


def test_set_group_rejects_unknown_dc():
    rm = ReplicationMap(["A", "B"])
    with pytest.raises(ValueError):
        rm.set_group("g1", ["A", "Z"])


def test_set_group_rejects_empty():
    rm = ReplicationMap(["A", "B"])
    with pytest.raises(ValueError):
        rm.set_group("g1", [])


def test_groups_at():
    rm = ReplicationMap(["A", "B", "C"])
    rm.set_group("g1", ["A", "B"])
    rm.set_group("g2", ["B", "C"])
    rm.set_group("g3", ["A"])
    assert rm.groups_at("A") == ["g1", "g3"]
    assert rm.groups_at("C") == ["g2"]


def test_average_replication_degree():
    rm = ReplicationMap(["A", "B", "C"])
    rm.set_group("g1", ["A"])
    rm.set_group("g2", ["A", "B", "C"])
    assert rm.average_replication_degree() == pytest.approx(2.0)


def test_groups_returns_copy():
    rm = ReplicationMap(["A", "B"])
    rm.set_group("g1", ["A"])
    groups = rm.groups()
    groups["g1"] = frozenset({"B"})
    assert rm.replicas_of_group("g1") == frozenset({"A"})
