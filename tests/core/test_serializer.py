"""Unit tests for serializers: routing, interest, order, faults."""

import pytest

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.core.serializer import interest_of
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.datacenter.messages import LabelBatch, Ping, Pong
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class FakeDC(Process):
    """Stands in for a datacenter: records label batches."""

    def __init__(self, sim, dc_name):
        super().__init__(sim, f"dc:{dc_name}")
        self.labels = []
        self.pongs = []

    def receive(self, sender, message):
        if isinstance(message, LabelBatch):
            self.labels.extend(message.labels)
        elif isinstance(message, Pong):
            self.pongs.append(message.seq)


def update_label(ts, origin, key="gshared:0"):
    return Label(LabelType.UPDATE, src=f"{origin}/g0", ts=ts, target=key,
                 origin_dc=origin)


class Rig:
    """Serializer chain s0(I)-s1(F)-s2(T) with three fake datacenters."""

    def __init__(self, replication=None, delays=None):
        self.sim = Simulator()
        model = LatencyModel(local_latency=0.25)
        model.set("I", "F", 10.0)
        model.set("I", "T", 100.0)
        model.set("F", "T", 110.0)
        self.network = Network(self.sim, latency_model=model,
                               rng=RngRegistry(seed=2))
        self.replication = replication or ReplicationMap(["I", "F", "T"])
        self.topology = TreeTopology(
            serializer_sites={"s0": "I", "s1": "F", "s2": "T"},
            edges=[("s0", "s1"), ("s1", "s2")],
            attachments={"I": "s0", "F": "s1", "T": "s2"},
            delays=delays or {})
        self.service = SaturnService(self.sim, self.network, self.replication)
        self.service.install_tree(self.topology, epoch=0)
        self.dcs = {}
        for name in ("I", "F", "T"):
            dc = FakeDC(self.sim, name)
            dc.attach_network(self.network)
            self.network.place(dc.name, name)
            self.dcs[name] = dc

    def inject(self, dc_name, labels):
        """Send a batch from a datacenter's sink into its ingress."""
        ingress = self.service.ingress_process(dc_name, 0)
        self.network.send(f"dc:{dc_name}", ingress,
                          LabelBatch(tuple(labels), epoch=0))


def test_interest_of_update_is_replica_set_minus_origin():
    replication = ReplicationMap(["I", "F", "T"])
    replication.set_group("gx", ["I", "F"])
    label = update_label(1.0, "I", key="gx:0")
    assert interest_of(label, replication) == frozenset({"F"})


def test_interest_of_migration_is_target():
    replication = ReplicationMap(["I", "F", "T"])
    label = Label(LabelType.MIGRATION, src="I/g0", ts=1.0, target="T",
                  origin_dc="I")
    assert interest_of(label, replication) == frozenset({"T"})


def test_interest_of_heartbeat_is_everyone_else():
    replication = ReplicationMap(["I", "F", "T"])
    label = Label(LabelType.HEARTBEAT, src="I/sink", ts=1.0, origin_dc="I")
    assert interest_of(label, replication) == frozenset({"F", "T"})


def test_update_reaches_all_interested_dcs():
    rig = Rig()
    rig.inject("I", [update_label(1.0, "I")])
    rig.sim.run()
    assert len(rig.dcs["F"].labels) == 1
    assert len(rig.dcs["T"].labels) == 1
    assert rig.dcs["I"].labels == []  # never echoed back to the origin


def test_genuine_partial_replication_prunes_branches():
    replication = ReplicationMap(["I", "F", "T"])
    replication.set_group("gif", ["I", "F"])
    rig = Rig(replication=replication)
    rig.inject("I", [update_label(1.0, "I", key="gif:0")])
    rig.sim.run()
    assert len(rig.dcs["F"].labels) == 1
    assert rig.dcs["T"].labels == []
    # the T-side serializer never even processed the label
    assert rig.service.serializers()["s2"].labels_delivered == 0


def test_labels_delivered_in_sent_order():
    rig = Rig()
    labels = [update_label(float(i), "I") for i in range(20)]
    rig.inject("I", labels[:10])
    rig.inject("I", labels[10:])
    rig.sim.run()
    assert [l.ts for l in rig.dcs["T"].labels] == [float(i) for i in range(20)]


def test_cross_origin_order_preserved_through_common_path():
    """b (issued at F after a was visible there) must follow a at T."""
    rig = Rig()
    a = update_label(1.0, "I")
    rig.inject("I", [a])
    rig.sim.run(until=15.0)  # a has passed s1 and reached F
    assert rig.dcs["F"].labels == [a]
    b = update_label(2.0, "F")
    rig.inject("F", [b])
    rig.sim.run()
    assert rig.dcs["T"].labels == [a, b]


def test_artificial_delay_applied_on_edge():
    plain = Rig()
    delayed = Rig(delays={("s0", "s1"): 50.0})
    label = update_label(1.0, "I")
    for rig in (plain, delayed):
        rig.inject("I", [label])
        rig.sim.run()
    # delivery time visible through simulated clocks: rerun measuring time
    times = {}
    for name, rig in (("plain", Rig()), ("delayed", Rig(delays={("s0", "s1"): 50.0}))):
        rig.inject("I", [update_label(1.0, "I")])
        rig.sim.run()
        times[name] = rig.sim.now
    assert times["delayed"] >= times["plain"] + 50.0


def test_migration_label_routed_only_to_target():
    rig = Rig()
    label = Label(LabelType.MIGRATION, src="I/g0", ts=1.0, target="T",
                  origin_dc="I")
    rig.inject("I", [label])
    rig.sim.run()
    assert rig.dcs["T"].labels == [label]
    assert rig.dcs["F"].labels == []


def test_ping_pong():
    rig = Rig()
    ingress = rig.service.ingress_process("I", 0)
    rig.network.send("dc:I", ingress, Ping(seq=42, origin="dc:I"))
    rig.sim.run()
    assert rig.dcs["I"].pongs == [42]


def test_failed_serializer_drops_labels():
    rig = Rig()
    rig.service.fail_serializer("s1")
    rig.inject("I", [update_label(1.0, "I")])
    rig.sim.run()
    assert rig.dcs["F"].labels == []
    assert rig.dcs["T"].labels == []


def test_chain_replica_crash_shortens_then_kills():
    rig = Rig()
    serializer = rig.service.serializers()["s0"]
    assert serializer.alive
    serializer.crash_replica()  # single-replica chain: the group dies
    assert not serializer.alive


def test_chain_latency_grows_with_replicas():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=1))
    replication = ReplicationMap(["I", "F"])
    service = SaturnService(sim, network, replication, chain_length=3,
                            local_hop_latency=0.4)
    topo = TreeTopology.star("I", {"I": "I", "F": "F"})
    service.install_tree(topo, epoch=0)
    serializer = service.serializers()["S1"]
    assert serializer.chain_latency == pytest.approx(0.8)
    serializer.crash_replica()
    assert serializer.chain_latency == pytest.approx(0.4)
    assert serializer.alive
