"""Unit tests for the Saturn service assembly (trees, epochs, faults)."""

import pytest

from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


def make_service():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=1))
    replication = ReplicationMap(["I", "F"])
    return SaturnService(sim, network, replication), network


def star():
    return TreeTopology.star("I", {"I": "I", "F": "F"})


def test_install_tree_creates_placed_processes():
    service, network = make_service()
    service.install_tree(star(), epoch=0)
    assert set(service.serializers()) == {"S1"}
    name = service.serializer_process_name(0, "S1")
    assert network.site_of(name) == "I"


def test_install_same_epoch_twice_rejected():
    service, _ = make_service()
    service.install_tree(star(), epoch=0)
    with pytest.raises(ValueError):
        service.install_tree(star(), epoch=0)


def test_ingress_process_resolution():
    service, _ = make_service()
    service.install_tree(star(), epoch=0)
    assert service.ingress_process("I", 0) == "ser:e0:S1"
    assert service.ingress_process("I", 99) is None
    assert service.ingress_process("ghost", 0) is None


def test_next_epoch_increments():
    service, _ = make_service()
    assert service.next_epoch() == 0
    service.install_tree(star(), epoch=0)
    assert service.next_epoch() == 1
    service.install_tree(star(), epoch=1)
    assert service.next_epoch() == 2


def test_topology_accessor_defaults_to_current_epoch():
    service, _ = make_service()
    service.install_tree(star(), epoch=0)
    assert service.topology().attachments == {"I": "S1", "F": "S1"}


def test_fail_tree_kills_all_serializers():
    service, _ = make_service()
    service.install_tree(star(), epoch=0)
    service.fail_tree()
    assert not service.serializers()["S1"].alive


def test_crash_replica_delegates():
    service, _ = make_service()
    service.install_tree(star(), epoch=0)
    service.crash_replica("S1")  # single replica: group dies
    assert not service.serializers()["S1"].alive
