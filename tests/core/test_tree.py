"""Unit tests for the serializer tree topology."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tree import TopologyError, TreeTopology


def chain_topology():
    """s0(I) - s1(F) - s2(T), one datacenter per serializer."""
    return TreeTopology(
        serializer_sites={"s0": "I", "s1": "F", "s2": "T"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"I": "s0", "F": "s1", "T": "s2"},
        delays={("s0", "s1"): 5.0})


def lat(a, b):
    table = {frozenset(("I", "F")): 10.0, frozenset(("I", "T")): 100.0,
             frozenset(("F", "T")): 110.0}
    return 0.0 if a == b else table[frozenset((a, b))]


def test_star_topology():
    star = TreeTopology.star("I", {"I": "I", "F": "F"})
    assert star.serializers == ["S1"]
    assert star.attachments == {"I": "S1", "F": "S1"}
    assert star.edges == []


def test_requires_at_least_one_serializer():
    with pytest.raises(TopologyError):
        TreeTopology(serializer_sites={}, edges=[], attachments={})


def test_rejects_self_loop():
    with pytest.raises(TopologyError):
        TreeTopology(serializer_sites={"s0": "I", "s1": "F"},
                     edges=[("s0", "s0")], attachments={})


def test_rejects_unknown_edge_endpoint():
    with pytest.raises(TopologyError):
        TreeTopology(serializer_sites={"s0": "I"},
                     edges=[("s0", "ghost")], attachments={})


def test_rejects_wrong_edge_count():
    with pytest.raises(TopologyError):
        TreeTopology(serializer_sites={"s0": "I", "s1": "F"},
                     edges=[], attachments={})


def test_rejects_cycle():
    with pytest.raises(TopologyError):
        TreeTopology(
            serializer_sites={"s0": "I", "s1": "F", "s2": "T", "s3": "S"},
            edges=[("s0", "s1"), ("s1", "s2"), ("s2", "s0")],
            attachments={})


def test_rejects_disconnected():
    with pytest.raises(TopologyError):
        TreeTopology(
            serializer_sites={"s0": "I", "s1": "F", "s2": "T", "s3": "S"},
            edges=[("s0", "s1"), ("s2", "s3"), ("s0", "s1")],
            attachments={})


def test_rejects_attachment_to_unknown_serializer():
    with pytest.raises(TopologyError):
        TreeTopology(serializer_sites={"s0": "I"}, edges=[],
                     attachments={"I": "ghost"})


def test_neighbors():
    topo = chain_topology()
    assert topo.neighbors("s1") == ["s0", "s2"]
    assert topo.neighbors("s0") == ["s1"]


def test_reachability():
    topo = chain_topology()
    assert topo.reachable_dcs("s0", "s1") == frozenset({"F", "T"})
    assert topo.reachable_dcs("s1", "s0") == frozenset({"I"})
    assert topo.reachable_dcs("s1", "s2") == frozenset({"T"})


def test_serializer_path():
    topo = chain_topology()
    assert topo.serializer_path("I", "T") == ["s0", "s1", "s2"]
    assert topo.serializer_path("T", "I") == ["s2", "s1", "s0"]
    assert topo.serializer_path("I", "F") == ["s0", "s1"]


def test_serializer_path_same_attachment():
    star = TreeTopology.star("I", {"I": "I", "F": "F"})
    assert star.serializer_path("I", "F") == ["S1"]


def test_path_latency_includes_links_and_delays():
    topo = chain_topology()
    dc_sites = {"I": "I", "F": "F", "T": "T"}
    # I->T: I-s0 (0) + s0-s1 (10 + delay 5) + s1-s2 (110) + s2-T (0)
    assert topo.path_latency("I", "T", lat, dc_sites) == pytest.approx(125.0)
    # T->I: no delay on the reverse direction
    assert topo.path_latency("T", "I", lat, dc_sites) == pytest.approx(120.0)


def test_delay_defaults_to_zero():
    topo = chain_topology()
    assert topo.delay("s1", "s2") == 0.0
    assert topo.delay("s0", "s1") == 5.0


def test_with_delays_copies():
    topo = chain_topology()
    updated = topo.with_delays({("s1", "s2"): 9.0})
    assert updated.delay("s1", "s2") == 9.0
    assert updated.delay("s0", "s1") == 0.0
    assert topo.delay("s0", "s1") == 5.0  # original untouched


def test_datacenters_and_serializers_sorted():
    topo = chain_topology()
    assert topo.datacenters == ["F", "I", "T"]
    assert topo.serializers == ["s0", "s1", "s2"]


@given(st.integers(min_value=2, max_value=8))
def test_random_chain_reachability_partitions_all_dcs(n):
    """For every directed edge, reachable sets partition the datacenters."""
    sites = {f"s{i}": f"site{i}" for i in range(n)}
    edges = [(f"s{i}", f"s{i+1}") for i in range(n - 1)]
    attachments = {f"dc{i}": f"s{i}" for i in range(n)}
    topo = TreeTopology(serializer_sites=sites, edges=edges,
                        attachments=attachments)
    for a, b in edges:
        forward = topo.reachable_dcs(a, b)
        backward = topo.reachable_dcs(b, a)
        assert forward | backward == set(attachments)
        assert not forward & backward
