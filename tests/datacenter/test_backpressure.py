"""Backpressure invariants: bounded queues, no lost labels, exact accounting.

Three layers of checks on the overload machinery:

* unit — :class:`AdmissionController` arithmetic and
  :class:`OverloadConfig` validation;
* structural — an overloaded open-loop Saturn run is *sampled every
  simulated millisecond* and the bounds must hold at every instant:
  admitted-but-unshipped updates never exceed ``sink_buffer_cap``, the
  ingress serializer never queues more than ``attached_sinks ×
  sink_credits`` labels, and sink credits stay within ``[0, initial]``;
* semantic — the offline causal checker passes under overload (admitted
  labels stay causally visible; rejection sheds load *before* a label
  exists, never after) and the open-loop source's accounting reconciles
  with zero tolerance.
"""

import pytest

from repro.core.tree import TreeTopology
from repro.datacenter.overload import AdmissionController, OverloadConfig
from repro.harness.runner import Cluster, ClusterConfig
from repro.verify.checker import ExecutionLog
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.streaming import StreamingFacebookWorkload

SITES = ("I", "F", "T")


# ---------------------------------------------------------------------------
# unit: config validation and admission arithmetic
# ---------------------------------------------------------------------------

def test_overload_config_validation():
    with pytest.raises(ValueError):
        OverloadConfig(sink_buffer_cap=-1)
    with pytest.raises(ValueError):
        OverloadConfig(serializer_service_rate=-0.5)
    with pytest.raises(ValueError):
        # flow control needs both halves of the credit loop
        OverloadConfig(sink_credits=10)
    with pytest.raises(ValueError):
        OverloadConfig(serializer_service_rate=2.0)
    assert not OverloadConfig().enabled
    assert OverloadConfig(sink_buffer_cap=5).enabled
    assert OverloadConfig(sink_credits=10,
                          serializer_service_rate=2.0).enabled


def test_admission_controller_caps_inflight():
    adm = AdmissionController(cap=3)
    assert all(adm.try_admit() for _ in range(3))
    assert not adm.try_admit()          # full
    assert adm.inflight == 3 and adm.peak_inflight == 3
    assert adm.admitted == 3 and adm.rejected == 1
    adm.on_shipped(2)
    assert adm.inflight == 1
    assert adm.try_admit()              # room again
    adm.on_shipped(0)                   # no-op
    adm.on_shipped(99)                  # floors at zero, never negative
    assert adm.inflight == 0
    with pytest.raises(ValueError):
        AdmissionController(cap=0)


# ---------------------------------------------------------------------------
# structural + semantic: an overloaded open-loop run
# ---------------------------------------------------------------------------

CAP, CREDITS, RATE = 40, 16, 1.0


def overloaded_cluster(with_log: bool = True):
    """3-DC Saturn chain pushed well past its serviced label rate."""
    topology = TreeTopology(
        serializer_sites={f"s{s}": s for s in SITES},
        edges=[("sI", "sF"), ("sF", "sT")],
        attachments={s: f"s{s}" for s in SITES})
    config = ClusterConfig(
        system="saturn", sites=SITES, num_partitions=2, seed=11,
        saturn_topology=topology,
        arrivals=PoissonArrivals(rate_ops_s=9000.0),
        overload=OverloadConfig(sink_buffer_cap=CAP, sink_credits=CREDITS,
                                serializer_service_rate=RATE))
    workload = StreamingFacebookWorkload(num_users=2000, min_replicas=2,
                                         max_replicas=3)
    cluster = Cluster(config, workload)
    log = None
    if with_log:
        log = ExecutionLog(cluster.replication)
        cluster.attach_execution_log(log)
    return cluster, log


@pytest.fixture(scope="module")
def overload_run():
    cluster, log = overloaded_cluster()
    violations = []

    def check_bounds():
        for dc in cluster.datacenters.values():
            if dc.admission is not None and dc.admission.inflight > CAP:
                violations.append(
                    (cluster.sim.now, dc.dc_name, dc.admission.inflight))
            sink = dc.sink
            if sink.credits is not None and not 0 <= sink.credits <= CREDITS:
                violations.append(
                    (cluster.sim.now, dc.dc_name, sink.credits))
        for name, ser in cluster.service.serializers().items():
            queued = sum(len(b.labels) for b, _ in ser._ingress)
            if queued > CREDITS:  # exactly one sink per chain serializer
                violations.append((cluster.sim.now, name, queued))
        cluster.sim.schedule(1.0, check_bounds)

    cluster.sim.schedule(0.5, check_bounds)
    results = cluster.run(duration=400.0, warmup=100.0)
    return cluster, log, results, violations


def test_bounds_hold_at_every_sampled_instant(overload_run):
    _, _, _, violations = overload_run
    assert violations == []


def test_overload_actually_engaged(overload_run):
    """The run must exercise the machinery, or the bounds are vacuous."""
    cluster, _, _, _ = overload_run
    assert sum(s.offered for s in cluster.sources) > 1000
    assert any(dc.admission.rejected > 0
               for dc in cluster.datacenters.values())
    assert any(dc.sink.coalesced_flushes > 0
               for dc in cluster.datacenters.values())
    assert any(ser.batches_serviced > 0
               for ser in cluster.service.serializers().values())


def test_credit_loop_conserves_labels(overload_run):
    """Serializers return exactly as many credits as labels serviced."""
    cluster, _, _, _ = overload_run
    for ser in cluster.service.serializers().values():
        assert ser.credits_returned >= 0
        assert len(ser._ingress) == 0 or ser.peak_ingress_depth > 0


def test_admitted_labels_stay_causally_visible(overload_run):
    """The offline checker has teeth under overload: every admitted
    update that became visible did so in causal order."""
    _, log, results, _ = overload_run
    assert results.ops_completed > 500
    assert log.check() == []


def test_accounting_reconciles_exactly(overload_run):
    cluster, _, _, _ = overload_run
    for source in cluster.sources:
        acct = source.accounting()
        assert acct["offered"] == acct["dispatched"] + acct["backlog"]
        assert acct["dispatched"] == (acct["completed"] + acct["rejected"]
                                      + acct["in_flight"])
        assert acct["in_flight"] >= 0
        assert acct["peak_pool"] >= 1


def test_no_labels_dropped_after_admission(overload_run):
    """Admission is the only shedding point: everything the sinks
    deferred was eventually shipped or is still buffered — deferral
    counts coalescing events, not losses."""
    cluster, _, _, _ = overload_run
    for dc in cluster.datacenters.values():
        sink = dc.sink
        assert sink.deferred_labels >= 0
        # whatever remains buffered is bounded by the admission cap
        assert len(sink._buffer) <= CAP + CREDITS
