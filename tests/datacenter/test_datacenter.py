"""Datacenter process tests: dispatch, heartbeats, outage detection."""

import pytest

from repro.datacenter.datacenter import DatacenterParams, dc_process_name

from conftest import MiniCluster


def test_dc_process_name():
    assert dc_process_name("I") == "dc:I"


def test_params_reject_unknown_consistency():
    with pytest.raises(ValueError):
        DatacenterParams(name="I", site="I", consistency="strong")


def test_bulk_heartbeats_advance_remote_stability():
    cluster = MiniCluster(consistency="timestamp", bulk_heartbeat_period=5.0)
    cluster.start()
    cluster.sim.run(until=150.0)
    proxy = cluster.dcs["F"].proxy
    assert proxy.seen_bulk_ts.get("I") is not None
    assert proxy.seen_bulk_ts.get("T") is not None
    assert proxy._ts_watermark > float("-inf")


def test_eventual_mode_sends_no_heartbeats_or_labels():
    cluster = MiniCluster(consistency="eventual")
    cluster.start()
    cluster.sim.run(until=50.0)
    proxy = cluster.dcs["F"].proxy
    assert proxy.seen_bulk_ts == {}


def test_unexpected_message_raises(mini_cluster):
    with pytest.raises(TypeError):
        mini_cluster.dcs["I"].receive("nobody", object())


def test_cost_helpers_skip_metadata_in_eventual_mode():
    saturn = MiniCluster(consistency="saturn")
    eventual = MiniCluster(consistency="eventual")
    assert (eventual.dcs["I"].read_cost(8)
            < saturn.dcs["I"].read_cost(8))
    assert (eventual.dcs["I"].write_cost(8)
            < saturn.dcs["I"].write_cost(8))


def test_remote_apply_cheaper_than_local_write(mini_cluster):
    dc = mini_cluster.dcs["I"]
    assert dc.remote_apply_cost(8) < dc.write_cost(8)


def test_ping_detector_triggers_fallback_on_outage():
    cluster = MiniCluster(ping_period=5.0)
    cluster.start()
    cluster.sim.run(until=50.0)
    assert not cluster.dcs["I"].saturn_down
    cluster.service.fail_tree()
    cluster.sim.run(until=700.0)  # ping_timeout (400 ms) must elapse
    for dc in cluster.dcs.values():
        assert dc.saturn_down
        assert dc.proxy._in_timestamp_mode()


def test_ping_detector_quiet_while_saturn_healthy():
    cluster = MiniCluster(ping_period=5.0)
    cluster.start()
    cluster.sim.run(until=300.0)
    assert all(not dc.saturn_down for dc in cluster.dcs.values())


def test_updates_still_flow_after_outage_via_timestamp_order():
    """Saturn down -> availability preserved through the ts fallback."""
    cluster = MiniCluster(ping_period=5.0, bulk_heartbeat_period=5.0)
    cluster.start()
    cluster.service.fail_tree()
    cluster.sim.run(until=100.0)
    dc = cluster.dcs["I"]
    partition = dc.store.partition_for("k")
    dc.gears[partition.index].update("k", 8, None)
    cluster.sim.run(until=600.0)
    assert cluster.dcs["F"].store.get("k") is not None
    assert cluster.dcs["T"].store.get("k") is not None
