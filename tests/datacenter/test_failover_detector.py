"""SinkFailoverDetector state machine on the chain3 deployment.

The chaos-suite scenarios (tests/chaos/) cover the full degrade/recover
arc end to end; these tests pin the individual FSM edges: the grace
period, suspicion, the stabilization window clearing a false positive,
and degradation parking the sink."""

import pytest

from repro.analysis.mc.scenario import build_chain3
from repro.datacenter.failover import (ATTACHED, DEGRADED, SUSPECTED,
                                       SinkFailoverDetector)
from repro.faults.plan import FaultAction, FaultPlan

DETECTOR = dict(beacon_timeout=7.0, stabilization_wait=4.0,
                probe_period=4.0, probe_backoff=2.0, probe_period_max=16.0)


def _deploy(name, horizon, plan=None, auto_failover=False):
    return build_chain3(name, horizon=horizon, beacon_period=2.0,
                        dc_extra=dict(DETECTOR),
                        auto_failover=auto_failover, fault_plan=plan)


def _crash_plan(restart_at=None):
    actions = [FaultAction(kind="crash-serializer", at=6.0,
                           args={"tree": "sI", "epoch": 0})]
    if restart_at is not None:
        actions.append(FaultAction(kind="restart-serializer", at=restart_at,
                                   args={"tree": "sI", "epoch": 0}))
    return FaultPlan(name="fsm", actions=tuple(actions))


def test_beacon_timeout_must_be_positive():
    with pytest.raises(ValueError, match="beacon_timeout"):
        SinkFailoverDetector(None, beacon_timeout=0.0)


def test_healthy_run_never_leaves_attached():
    scenario = _deploy("fsm-healthy", horizon=60.0)
    scenario.run()
    for name, dc in scenario.datacenters.items():
        assert dc.failover is not None, name
        assert dc.failover.state == ATTACHED
        assert dc.failover.transitions == []
        assert dc.failover.degraded_spans == []
        assert not dc.saturn_down


def test_silence_suspects_then_degrades_and_parks_the_sink():
    # sI's last beacon lands just after t=6; silence crosses the 7 ms
    # timeout at the t=14 check, and the 4 ms stabilization wait expires
    # with the serializer still dead
    scenario = _deploy("fsm-degrade", horizon=60.0, plan=_crash_plan())
    scenario.run()
    detector = scenario.datacenters["I"].failover
    assert [state for _, state in detector.transitions] == [
        SUSPECTED, DEGRADED]
    assert detector.state == DEGRADED
    assert detector.degraded_spans == []  # span closes only on re-attach
    assert scenario.datacenters["I"].saturn_down
    assert scenario.datacenters["I"].sink.parked
    # the healthy datacenters kept their own attachments
    assert scenario.datacenters["T"].failover.state == ATTACHED


def test_delayed_beacon_within_stabilization_window_clears_suspicion():
    # a congestion spike delays (but does not lose) sI's beacons: the one
    # sent at t=6 lands at t=16.25, inside the stabilization window
    # (suspected t=14, degrade timer t=18).  Same incarnation, so it is a
    # genuine false positive and clears without degrading.
    plan = FaultPlan(name="fsm-clear", actions=(
        FaultAction(kind="delay-spike", at=5.0,
                    args={"src": "ser:e0:sI", "dst": "dc:I", "extra": 10.0}),
    ))
    scenario = _deploy("fsm-clear", horizon=60.0, plan=plan)
    scenario.run()
    detector = scenario.datacenters["I"].failover
    assert [state for _, state in detector.transitions] == [
        SUSPECTED, ATTACHED]
    assert detector.state == ATTACHED
    assert detector.degraded_spans == []
    assert not scenario.datacenters["I"].saturn_down
    assert not scenario.datacenters["I"].sink.parked


def test_fast_restart_inside_suspicion_window_still_forces_recovery():
    # crash at t=6, restart at t=15: the revived serializer announces its
    # new incarnation immediately (t=15.25, before the degrade timer at
    # t=18 and before it can forward a single label), proving the tree
    # lost its volatile state.  Liveness must NOT clear the suspicion; the
    # detector degrades on the spot and the coordinator fires the epoch
    # change that replays the swallowed labels (found by the
    # random-fault-plan property test).
    scenario = _deploy("fsm-fast-restart", horizon=120.0,
                       plan=_crash_plan(15.0), auto_failover=True)
    scenario.run()
    detector = scenario.datacenters["I"].failover
    assert [state for _, state in detector.transitions] == [
        SUSPECTED, DEGRADED, ATTACHED]
    assert detector.degraded_spans
    assert scenario.failover.recoveries
    assert scenario.service.current_epoch == 1


def test_degraded_detector_reaches_attached_only_through_a_new_epoch():
    # with the coordinator wired, the restarted serializer's beacon is
    # connectivity evidence only; re-attachment happens after the
    # emergency switch raised the watched epoch past the failed one
    scenario = _deploy("fsm-recover", horizon=120.0,
                       plan=_crash_plan(40.0), auto_failover=True)
    scenario.run()
    detector = scenario.datacenters["I"].failover
    assert [state for _, state in detector.transitions] == [
        SUSPECTED, DEGRADED, ATTACHED]
    reattached_at = detector.transitions[-1][0]
    recovery_at = scenario.failover.recoveries[0][0]
    assert recovery_at <= reattached_at
    assert detector._watched_epoch == 1
