"""Frontend attach semantics (Alg. 1) and the client state machine."""

from repro.core.label import Label, LabelType
from repro.datacenter.client import ClientProcess
from repro.datacenter.messages import AttachOk, ClientAttach
from repro.harness.runner import MetricsHub
from repro.sim.process import Process
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp

from conftest import MiniCluster


class Probe(Process):
    """Fires client-style messages and records replies."""

    def __init__(self, sim, name="probe"):
        super().__init__(sim, name)
        self.replies = []

    def receive(self, sender, message):
        self.replies.append(message)


def make_client(cluster, ops, home="I", max_ops=None, client_id="c0"):
    iterator = iter(ops)
    client = ClientProcess(cluster.sim, client_id, home,
                           lambda c: next(iterator, None),
                           metrics=cluster.metrics, max_ops=max_ops)
    client.attach_network(cluster.network)
    cluster.network.place(client.name, home)
    return client


def test_attach_with_no_past_is_immediate(mini_cluster):
    probe = Probe(mini_cluster.sim)
    probe.attach_network(mini_cluster.network)
    mini_cluster.network.place(probe.name, "I")
    probe.send("dc:I", ClientAttach("c", None))
    mini_cluster.sim.run(until=2.0)
    assert isinstance(probe.replies[0], AttachOk)


def test_attach_with_local_past_is_immediate(mini_cluster):
    probe = Probe(mini_cluster.sim)
    probe.attach_network(mini_cluster.network)
    mini_cluster.network.place(probe.name, "I")
    local = Label(LabelType.UPDATE, src="I/g0", ts=99.0, target="k",
                  origin_dc="I")
    probe.send("dc:I", ClientAttach("c", local))
    mini_cluster.sim.run(until=2.0)
    assert isinstance(probe.replies[0], AttachOk)


def test_attach_with_remote_update_label_waits_for_stability():
    cluster = MiniCluster(sink_heartbeat_period=5.0)
    cluster.start()
    probe = Probe(cluster.sim)
    probe.attach_network(cluster.network)
    cluster.network.place(probe.name, "F")
    remote = Label(LabelType.UPDATE, src="I/g0", ts=1.0, target="k",
                   origin_dc="I")
    probe.send("dc:F", ClientAttach("c", remote))
    cluster.sim.run(until=2.0)
    assert probe.replies == []  # not yet stable
    # heartbeat labels from I and T eventually raise all watermarks past 1.0
    cluster.sim.run(until=300.0)
    assert probe.replies and isinstance(probe.replies[0], AttachOk)


def test_client_runs_sequence_of_ops(mini_cluster):
    ops = [UpdateOp("k1", 8), ReadOp("k1"), UpdateOp("k2", 8), ReadOp("k2")]
    client = make_client(mini_cluster, ops)
    client.start()
    mini_cluster.sim.run(until=100.0)
    assert client.ops_completed == 4
    assert client.stamp is not None
    assert client.stamp.target == "k2"


def test_client_stamp_tracks_greatest_label(mini_cluster):
    ops = [UpdateOp("a", 8), UpdateOp("b", 8)]
    client = make_client(mini_cluster, ops)
    client.start()
    mini_cluster.sim.run(until=100.0)
    assert client.stamp.target == "b"


def test_client_max_ops(mini_cluster):
    ops = [ReadOp("k")] * 10
    client = make_client(mini_cluster, ops, max_ops=3)
    client.start()
    mini_cluster.sim.run(until=100.0)
    assert client.ops_completed == 3


def test_remote_read_full_migration_roundtrip(mini_cluster):
    """migrate out -> attach -> read -> migrate back -> attach home."""
    writer = make_client(mini_cluster, [UpdateOp("k", 8)], home="T",
                         client_id="writer")
    writer.start()
    mini_cluster.sim.run(until=300.0)

    ops = [RemoteReadOp("k", target_dc="T")]
    client = make_client(mini_cluster, ops)
    client.start()
    mini_cluster.sim.run(until=1500.0)
    assert client.ops_completed == 1
    assert client.current_dc == "I"
    # the client observed T's update during the remote read
    assert client.stamp is not None and client.stamp.ts >= writer.stamp.ts
    kinds = mini_cluster.metrics.ops.counts()
    assert kinds.get("remote_read") == 1


def test_remote_read_latency_reflects_wan(mini_cluster):
    ops = [RemoteReadOp("k", target_dc="T")]
    client = make_client(mini_cluster, ops)
    client.start()
    mini_cluster.sim.run(until=2000.0)
    latencies = mini_cluster.metrics.ops.latencies("remote_read")
    # at least two I<->T round trips (100 ms one way)
    assert latencies and latencies[0] >= 300.0


def test_read_of_missing_key_returns_no_label(mini_cluster):
    client = make_client(mini_cluster, [ReadOp("missing")])
    client.start()
    mini_cluster.sim.run(until=50.0)
    assert client.ops_completed == 1
    assert client.stamp is None


def test_update_latency_recorded(mini_cluster):
    client = make_client(mini_cluster, [UpdateOp("k", 8)])
    client.start()
    mini_cluster.sim.run(until=50.0)
    latencies = mini_cluster.metrics.ops.latencies("update")
    assert len(latencies) == 1
    assert latencies[0] > 0
