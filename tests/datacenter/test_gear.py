"""Unit tests for gears: label generation and payload fan-out (Alg. 2)."""

import pytest

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.datacenter.messages import RemotePayload

from conftest import MiniCluster


def test_update_generates_monotonic_labels():
    cluster = MiniCluster()
    gear = cluster.dcs["I"].gears[0]
    labels = [gear.update("k", 8, None) for _ in range(10)]
    stamps = [l.ts for l in labels]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)


def test_update_label_exceeds_client_causal_past():
    cluster = MiniCluster()
    gear = cluster.dcs["I"].gears[0]
    past = Label(LabelType.UPDATE, src="F/g0", ts=1e6, target="k",
                 origin_dc="F")
    label = gear.update("k", 8, past)
    assert label.ts > past.ts


def test_update_writes_local_store():
    cluster = MiniCluster()
    dc = cluster.dcs["I"]
    label = dc.gears[dc.store.partition_for("k").index].update("k", 32, None)
    stored = dc.store.get("k")
    assert stored is not None
    assert stored.label == label
    assert stored.value_size == 32


def test_update_ships_payload_to_replicas_only():
    replication = ReplicationMap(["I", "F", "T"])
    replication.set_group("gx", ["I", "F"])
    cluster = MiniCluster(replication=replication)
    cluster.start()  # the sink must flush the label for F's proxy to apply
    dc = cluster.dcs["I"]
    partition = dc.store.partition_for("gx:0")
    dc.gears[partition.index].update("gx:0", 8, None)
    cluster.sim.run(until=50.0)
    assert cluster.dcs["F"].store.get("gx:0") is not None
    assert cluster.dcs["T"].store.get("gx:0") is None


def test_update_label_identifies_origin_and_key():
    cluster = MiniCluster()
    gear = cluster.dcs["T"].gears[0]
    label = gear.update("mykey", 8, None)
    assert label.origin_dc == "T"
    assert label.target == "mykey"
    assert label.src.startswith("T/g")


def test_migration_label_targets_datacenter():
    cluster = MiniCluster()
    gear = cluster.dcs["I"].gears[0]
    label = gear.migration("T", None)
    assert label.type is LabelType.MIGRATION
    assert label.target == "T"
    assert label.origin_dc == "I"


def test_migration_label_exceeds_client_past():
    cluster = MiniCluster()
    gear = cluster.dcs["I"].gears[0]
    past = gear.update("k", 8, None)
    migration = gear.migration("T", past)
    assert migration.ts > past.ts


def test_read_returns_latest_version():
    cluster = MiniCluster()
    dc = cluster.dcs["I"]
    partition = dc.store.partition_for("k")
    gear = dc.gears[partition.index]
    gear.update("k", 8, None)
    newest = gear.update("k", 9, None)
    stored = gear.read("k")
    assert stored.label == newest
    assert gear.read("missing") is None
