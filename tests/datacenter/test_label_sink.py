"""Unit tests for the label sink (serial causal stream towards Saturn)."""

from repro.core.label import Label, LabelType
from repro.datacenter.messages import LabelBatch
from repro.sim.process import Process

from conftest import MiniCluster


class IngressSpy(Process):
    """Replaces a serializer to capture what the sink emits."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.batches = []

    def receive(self, sender, message):
        if isinstance(message, LabelBatch):
            self.batches.append(message)


def spy_on_ingress(cluster, dc_name="I"):
    ingress_name = cluster.service.ingress_process(dc_name, 0)
    serializer = cluster.network.process(ingress_name)
    serializer.crash()  # silence the real serializer
    spy = IngressSpy(cluster.sim, "spy")
    cluster.network._processes[ingress_name] = spy  # swap in place
    spy.name = ingress_name
    return spy


def test_sink_flushes_periodically_in_ts_order():
    cluster = MiniCluster(sink_batch_period=2.0)
    spy = spy_on_ingress(cluster)
    cluster.start()
    sink = cluster.dcs["I"].sink
    gear = cluster.dcs["I"].gears[0]
    # add out of order (simulating gears on different partitions)
    l2 = Label(LabelType.UPDATE, src="I/g1", ts=5.0, target="k",
               origin_dc="I")
    l1 = Label(LabelType.UPDATE, src="I/g0", ts=3.0, target="k",
               origin_dc="I")
    sink.add(l2)
    sink.add(l1)
    cluster.sim.run(until=3.0)
    assert len(spy.batches) == 1
    assert list(spy.batches[0].labels) == [l1, l2]


def test_sink_empty_flush_sends_nothing():
    cluster = MiniCluster(sink_batch_period=1.0, sink_heartbeat_period=0)
    spy = spy_on_ingress(cluster)
    cluster.start()
    cluster.sim.run(until=20.0)
    assert spy.batches == []


def test_sink_heartbeats_when_idle():
    cluster = MiniCluster(sink_batch_period=1.0, sink_heartbeat_period=5.0)
    spy = spy_on_ingress(cluster)
    cluster.start()
    cluster.sim.run(until=21.0)
    # the star serializer hears every sink; look at I's stream only
    from_i = [batch for batch in spy.batches
              if batch.labels[0].origin_dc == "I"]
    assert len(from_i) >= 3
    assert all(batch.labels[0].type is LabelType.HEARTBEAT
               for batch in from_i)
    stamps = [batch.labels[0].ts for batch in from_i]
    assert stamps == sorted(stamps)


def test_heartbeat_suppressed_by_recent_traffic():
    cluster = MiniCluster(sink_batch_period=1.0, sink_heartbeat_period=5.0)
    spy = spy_on_ingress(cluster)
    cluster.start()
    dc = cluster.dcs["I"]

    def busy():
        dc.gears[0].update("k", 8, None)

    timer = dc.every(2.0, busy)
    cluster.sim.run(until=20.0)
    from_i = [batch for batch in spy.batches
              if batch.labels[0].origin_dc == "I"]
    assert from_i, "updates should flow"
    assert all(batch.labels[0].type is LabelType.UPDATE
               for batch in from_i)


def test_sink_ignores_labels_when_not_saturn():
    cluster = MiniCluster(consistency="eventual")
    dc = cluster.dcs["I"]
    dc.gears[0].update("k", 8, None)
    assert dc.sink._buffer == []


def test_sink_counts():
    cluster = MiniCluster(sink_batch_period=1.0)
    spy = spy_on_ingress(cluster)
    cluster.start()
    dc = cluster.dcs["I"]
    for _ in range(5):
        dc.gears[0].update("k", 8, None)
    cluster.sim.run(until=2.0)
    assert dc.sink.labels_flushed == 5
    assert dc.sink.batches_flushed == 1
