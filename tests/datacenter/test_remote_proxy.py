"""Unit tests for the remote proxy: Saturn-order application, timestamp
fallback, migrations, watermarks, and epoch transitions."""

import pytest

from repro.core.label import Label, LabelType
from repro.datacenter.messages import BulkHeartbeat, LabelBatch, RemotePayload

from conftest import MiniCluster


def update(ts, origin="I", key="k", src_gear="g0"):
    return Label(LabelType.UPDATE, src=f"{origin}/{src_gear}", ts=ts,
                 target=key, origin_dc=origin)


def payload(label, size=8, created_at=0.0):
    return RemotePayload(label=label, key=label.target, value_size=size,
                         created_at=created_at)


def proxy_of(cluster, dc="F"):
    return cluster.dcs[dc].proxy


def deliver_labels(cluster, dc, labels, epoch=0):
    proxy_of(cluster, dc).on_labels(LabelBatch(tuple(labels), epoch=epoch))


def test_update_waits_for_payload():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    label = update(1.0)
    deliver_labels(cluster, "F", [label])
    cluster.sim.run(until=5.0)
    assert proxy.updates_applied == 0
    proxy.on_payload(payload(label))
    cluster.sim.run(until=10.0)
    assert proxy.updates_applied == 1
    assert cluster.dcs["F"].store.get("k") is not None


def test_payload_waits_for_label():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    label = update(1.0)
    proxy.on_payload(payload(label))
    cluster.sim.run(until=5.0)
    assert proxy.updates_applied == 0
    deliver_labels(cluster, "F", [label])
    cluster.sim.run(until=10.0)
    assert proxy.updates_applied == 1


def test_visibility_follows_label_order_across_partitions():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    visible = []
    cluster.dcs["F"].on_remote_visible = lambda p: visible.append(p.label.ts)
    labels = [update(float(i), key=f"k{i}") for i in range(1, 6)]
    deliver_labels(cluster, "F", labels)
    for l in reversed(labels):  # payloads arrive in reverse
        proxy.on_payload(payload(l))
    cluster.sim.run(until=10.0)
    assert visible == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_migration_waits_for_all_prior_labels():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    u = update(1.0)
    migration = Label(LabelType.MIGRATION, src="I/g0", ts=2.0, target="F",
                      origin_dc="I")
    deliver_labels(cluster, "F", [u, migration])
    cluster.sim.run(until=5.0)
    assert not proxy.migration_processed(migration)  # u's payload missing
    proxy.on_payload(payload(u))
    cluster.sim.run(until=10.0)
    assert proxy.migration_processed(migration)


def test_heartbeat_label_advances_watermark():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    heartbeat = Label(LabelType.HEARTBEAT, src="I/sink", ts=7.0,
                      origin_dc="I")
    deliver_labels(cluster, "F", [heartbeat])
    cluster.sim.run(until=1.0)
    assert proxy.applied_ts["I"] == 7.0


def test_update_stable_requires_all_origins():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    label = update(5.0, origin="I")
    deliver_labels(cluster, "F", [
        Label(LabelType.HEARTBEAT, src="I/sink", ts=9.0, origin_dc="I")])
    cluster.sim.run(until=1.0)
    assert not proxy.update_stable(label)  # T has not reached 5.0 yet
    deliver_labels(cluster, "F", [
        Label(LabelType.HEARTBEAT, src="T/sink", ts=9.0, origin_dc="T")])
    cluster.sim.run(until=2.0)
    assert proxy.update_stable(label)


def test_wait_for_immediate_and_deferred():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    fired = []
    proxy.wait_for(lambda: True, lambda: fired.append("now"))
    assert fired == ["now"]
    flag = []
    proxy.wait_for(lambda: bool(flag), lambda: fired.append("later"))
    flag.append(1)
    heartbeat = Label(LabelType.HEARTBEAT, src="I/sink", ts=1.0,
                      origin_dc="I")
    deliver_labels(cluster, "F", [heartbeat])
    cluster.sim.run(until=1.0)
    assert fired == ["now", "later"]


# -- timestamp mode (P-configuration / fallback) -------------------------------


def test_timestamp_mode_applies_only_when_stable():
    cluster = MiniCluster(consistency="timestamp")
    proxy = proxy_of(cluster)
    label = update(5.0, origin="I")
    proxy.on_payload(payload(label))
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="I", ts=10.0))
    cluster.sim.run(until=5.0)
    assert proxy.updates_applied == 0  # T's cut still unknown
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="T", ts=10.0))
    cluster.sim.run(until=10.0)
    assert proxy.updates_applied == 1
    assert proxy._ts_watermark == 10.0


def test_timestamp_mode_applies_in_ts_order():
    cluster = MiniCluster(consistency="timestamp")
    proxy = proxy_of(cluster)
    visible = []
    cluster.dcs["F"].on_remote_visible = lambda p: visible.append(p.label.ts)
    for ts in (3.0, 1.0, 2.0):
        proxy.on_payload(payload(update(ts, key=f"k{ts}")))
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="I", ts=10.0))
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="T", ts=10.0))
    cluster.sim.run(until=10.0)
    assert visible == [1.0, 2.0, 3.0]


def test_fallback_moves_pending_payloads_to_ts_path():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    label = update(5.0, origin="I")
    proxy.on_payload(payload(label))  # label never arrives (outage)
    proxy.enter_fallback()
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="I", ts=10.0))
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="T", ts=10.0))
    cluster.sim.run(until=10.0)
    assert proxy.updates_applied == 1


def test_fallback_is_idempotent():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    proxy.enter_fallback()
    proxy.enter_fallback()
    assert proxy._in_timestamp_mode()


def test_duplicate_label_after_fallback_application_skipped():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    label = update(5.0, origin="I")
    proxy.on_payload(payload(label))
    proxy.enter_fallback()
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="I", ts=10.0))
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="T", ts=10.0))
    cluster.sim.run(until=10.0)
    assert proxy.updates_applied == 1
    # recovery replays the same label through a later Saturn stream
    proxy._emergency = False
    deliver_labels(cluster, "F", [label])
    cluster.sim.run(until=20.0)
    assert proxy.updates_applied == 1  # not applied twice


# -- epoch transitions ---------------------------------------------------------


def test_future_epoch_batches_are_buffered():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    label = update(1.0)
    deliver_labels(cluster, "F", [label], epoch=1)
    proxy.on_payload(payload(label))
    cluster.sim.run(until=5.0)
    assert proxy.updates_applied == 0
    assert proxy._epoch_buffers[1] == [label]


def test_fast_transition_requires_all_marks():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    proxy.begin_transition(1)
    mark_i = Label(LabelType.EPOCH_CHANGE, src="I/sink", ts=1.0, target="1",
                   origin_dc="I")
    deliver_labels(cluster, "F", [mark_i])
    cluster.sim.run(until=1.0)
    assert proxy.current_epoch == 0
    mark_t = Label(LabelType.EPOCH_CHANGE, src="T/sink", ts=1.0, target="1",
                   origin_dc="T")
    deliver_labels(cluster, "F", [mark_t])
    cluster.sim.run(until=2.0)
    assert proxy.current_epoch == 1
    assert len(proxy.reconfiguration_times) == 1


def test_buffered_labels_processed_after_transition():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    new_label = update(9.0)
    deliver_labels(cluster, "F", [new_label], epoch=1)
    proxy.on_payload(payload(new_label))
    proxy.begin_transition(1)
    for origin in ("I", "T"):
        mark = Label(LabelType.EPOCH_CHANGE, src=f"{origin}/sink", ts=1.0,
                     target="1", origin_dc=origin)
        deliver_labels(cluster, "F", [mark])
    cluster.sim.run(until=5.0)
    assert proxy.current_epoch == 1
    assert proxy.updates_applied == 1


def test_emergency_transition_adopts_after_ts_stability():
    cluster = MiniCluster()
    proxy = proxy_of(cluster)
    c2_label = update(5.0, origin="I")
    deliver_labels(cluster, "F", [c2_label], epoch=1)
    proxy.begin_transition(1, emergency=True)
    assert proxy._in_timestamp_mode()
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="I", ts=10.0))
    proxy.on_heartbeat(BulkHeartbeat(origin_dc="T", ts=10.0))
    cluster.sim.run(until=5.0)
    assert proxy.current_epoch == 1
    assert not proxy._in_timestamp_mode()
    # the buffered C2 update now only needs its payload
    proxy.on_payload(payload(c2_label))
    cluster.sim.run(until=10.0)
    assert proxy.updates_applied == 1
