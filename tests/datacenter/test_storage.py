"""Unit tests for the partitioned per-datacenter store."""

import pytest

from repro.core.label import Label, LabelType
from repro.datacenter.storage import (PartitionedStore, StoredValue,
                                      responsible_partition)


def label(ts, src="I/g0"):
    return Label(LabelType.UPDATE, src=src, ts=ts, target="k", origin_dc="I")


def test_requires_partitions(sim):
    with pytest.raises(ValueError):
        PartitionedStore(sim, 0)


def test_put_get_roundtrip(sim):
    store = PartitionedStore(sim, 4)
    value = StoredValue(label=label(1.0), value_size=16)
    assert store.put("k", value)
    assert store.get("k") is value


def test_get_missing_returns_none(sim):
    store = PartitionedStore(sim, 2)
    assert store.get("nope") is None


def test_last_writer_wins_keeps_newest(sim):
    store = PartitionedStore(sim, 2)
    newer = StoredValue(label=label(2.0), value_size=1)
    older = StoredValue(label=label(1.0), value_size=1)
    assert store.put("k", newer)
    assert not store.put("k", older)  # stale write rejected
    assert store.get("k") is newer


def test_lww_tie_broken_by_source(sim):
    store = PartitionedStore(sim, 2)
    a = StoredValue(label=label(1.0, src="A/g0"), value_size=1)
    b = StoredValue(label=label(1.0, src="B/g0"), value_size=1)
    store.put("k", a)
    assert store.put("k", b)  # B/g0 > A/g0 at equal ts
    assert store.get("k") is b


def test_responsible_partition_stable_and_bounded():
    for key in ("a", "b", "g1:0", "zzz"):
        p = responsible_partition(key, 8)
        assert 0 <= p < 8
        assert p == responsible_partition(key, 8)


def test_partition_for_uses_hash(sim):
    store = PartitionedStore(sim, 4)
    partition = store.partition_for("k")
    assert partition is store.partitions[responsible_partition("k", 4)]


def test_total_keys_and_write_counter(sim):
    store = PartitionedStore(sim, 4)
    for i in range(10):
        store.put(f"k{i}", StoredValue(label=label(float(i)), value_size=1))
    assert store.total_keys() == 10
    assert sum(p.writes_applied for p in store.partitions) == 10
