"""Command-line interface."""

import json

import pytest

from repro.harness.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out
    assert "saturn" in out
    assert "cops" in out


def test_every_experiment_registered():
    expected = {"fig1a", "fig1b", "fig4", "fig5", "fig6", "fig7", "fig8",
                "reconfiguration"}
    assert expected <= set(EXPERIMENTS)


def test_run_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig99"])


def test_run_experiment_smoke(capsys, tmp_path):
    out_file = tmp_path / "result.json"
    assert main(["run", "ablation-artificial-delays", "--scale", "smoke",
                 "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "ablation-artificial-delays" in out
    payload = json.loads(out_file.read_text())
    assert "rows" in payload


def test_bench_command(capsys):
    assert main(["bench", "--system", "eventual", "--duration", "400",
                 "--clients", "2"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "visibility mean" in out


def test_bench_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--system", "spanner"])


def test_configure_command(capsys):
    assert main(["configure", "--beam-width", "2"]) == 0
    out = capsys.readouterr().out
    assert "score" in out
    assert "edges" in out


def test_mc_subcommand_forwards_to_model_checker(capsys):
    assert main(["mc", "--list"]) == 0
    out = capsys.readouterr().out
    assert "chain3" in out
    assert "drop-fifo" in out


def test_mc_subcommand_clean_sweep(capsys):
    assert main(["mc", "--scenario", "chain3", "--strategy", "exhaustive",
                 "--depth", "2"]) == 0
    assert "0 counterexample" in capsys.readouterr().out


def test_arch_subcommand_forwards_to_auditor(capsys):
    assert main(["arch"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_arch_subcommand_list_rules(capsys):
    assert main(["arch", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "ARCH001" in out and "ARCH203" in out
