"""Experiment functions: structure and basic sanity at smoke scale.

These are the functions the benchmarks call; here we verify shapes and
invariants cheaply (tiny Scale) so a broken experiment fails fast in the
unit suite rather than mid-benchmark.
"""

import pytest

from repro.harness.experiments import (SMOKE, Scale, ablation_genuine_partial,
                                       ablation_sink_batching,
                                       m_configuration, run_once)
from repro.workloads.synthetic import SyntheticWorkload

TINY = Scale(duration=300.0, warmup=80.0, clients_per_dc=3,
             facebook_clients_per_dc=6, beam_width=2)


def test_m_configuration_cached():
    first = m_configuration(("I", "F", "T"), beam_width=2)
    second = m_configuration(("I", "F", "T"), beam_width=2)
    assert first is second


def test_m_configuration_valid_tree():
    topology = m_configuration(("I", "F", "T", "S"), beam_width=2)
    assert sorted(topology.attachments) == ["F", "I", "S", "T"]
    assert len(topology.edges) == len(topology.serializer_sites) - 1


def test_run_once_uses_m_configuration_for_saturn():
    workload = SyntheticWorkload(correlation="full")
    results = run_once("saturn", workload, TINY, sites=("I", "F", "T"))
    cluster = results.cluster
    assert cluster.service is not None
    assert results.ops_completed > 0


def test_run_once_passes_overrides():
    workload = SyntheticWorkload(correlation="full")
    results = run_once("eventual", workload, TINY, sites=("I", "F"),
                       clients_per_dc=1)
    assert len(results.cluster.clients) == 2


def test_run_once_before_run_hook():
    seen = []
    workload = SyntheticWorkload(correlation="full")
    run_once("eventual", workload, TINY, sites=("I", "F"),
             before_run=lambda cluster: seen.append(cluster))
    assert len(seen) == 1


def test_ablation_sink_batching_rows():
    result = ablation_sink_batching(TINY, periods=(1.0, 8.0))
    assert len(result["rows"]) == 2
    fast, slow = result["rows"]
    assert slow["mean_visibility_ms"] > fast["mean_visibility_ms"]


def test_ablation_genuine_partial_rows():
    result = ablation_genuine_partial(TINY)
    full, partial = result["rows"]
    assert partial["total_labels"] < full["total_labels"]
    assert set(full["labels_processed_per_dc"]) == set(
        partial["labels_processed_per_dc"])
