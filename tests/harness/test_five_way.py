"""Five-way comparison: golden smoke summary + qualitative rankings.

The committed fixture pins the smoke-scale saturn / gentlerain / cure /
eunomia / okapi comparison byte-for-byte (mirrors ``tests/obs/golden``):
any change to protocol behaviour, the metadata accounting, or the
simulation kernel shows up as a diff here before it shows up as a silent
drift in EXPERIMENTS.md numbers.  If a change is *deliberate*,
regenerate with::

    PYTHONPATH=src python -c "
    import json
    from repro.harness.experiments import five_way_smoke_summary
    print(json.dumps(five_way_smoke_summary(), indent=2, sort_keys=True))
    " > tests/harness/golden/five_way_smoke.json

and update ``GOLDEN_SHA256`` below.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.harness.experiments import FIVE_WAY_SYSTEMS, five_way_smoke_summary

GOLDEN = Path(__file__).parent / "golden" / "five_way_smoke.json"
GOLDEN_SHA256 = \
    "08f30d75861ade946596e7493f4fd99bc0a9bb837c3423612867175d86b185af"


@pytest.fixture(scope="module")
def summary():
    return five_way_smoke_summary()


def test_golden_five_way_smoke_is_reproduced_byte_for_byte(summary):
    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    assert text == GOLDEN.read_text()
    assert hashlib.sha256(text.encode()).hexdigest() == GOLDEN_SHA256


def test_golden_fixture_covers_all_five_systems():
    pinned = json.loads(GOLDEN.read_text())
    assert sorted(pinned) == sorted(FIVE_WAY_SYSTEMS)
    for row in pinned.values():
        assert row["ops_completed"] > 1000
        assert row["visible_updates"] > 100


def test_metadata_cost_ranking(summary):
    """The paper's taxonomy, §2/§7: scalar stamps (GentleRain, Eunomia)
    are cheaper than Saturn's per-label metadata, which at 3 sites is
    cheaper than the vector protocols; Okapi's knowledge rows cost at
    least Cure's per-origin streams."""
    meta = {system: row["metadata_bytes_per_update"]
            for system, row in summary.items()}
    assert meta["gentlerain"] < meta["eunomia"] < meta["saturn"]
    assert meta["saturn"] < meta["cure"] <= meta["okapi"]


def test_visibility_ranking(summary):
    """Saturn's tree routing beats every stabilization baseline on mean
    remote visibility; the global-cut protocols pay for their cheaper
    exchanges with staleness (Okapi is the slowest of the five)."""
    mean = {system: row["mean_visibility_ms"] for system, row in
            summary.items()}
    assert mean["saturn"] < min(mean["gentlerain"], mean["eunomia"],
                                mean["okapi"])
    assert mean["okapi"] == max(mean.values())
