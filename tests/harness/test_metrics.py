"""Statistics helpers and metric recorders."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.stats import cdf_points, mean, percentile
from repro.metrics.throughput import OpRecorder
from repro.metrics.visibility import VisibilityRecorder


# -- stats ---------------------------------------------------------------------

def test_mean():
    assert mean([]) == 0.0
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_percentile_basics():
    samples = list(range(1, 101))
    assert percentile(samples, 0) == 1
    assert percentile(samples, 100) == 100
    assert percentile(samples, 50) == pytest.approx(50.5)


def test_percentile_single_sample():
    assert percentile([7.0], 90) == 7.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_cdf_points():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(samples, p):
    value = percentile(samples, p)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=2, max_size=50))
def test_percentile_monotone_in_p(samples):
    assert percentile(samples, 30) <= percentile(samples, 70)


# -- visibility recorder ---------------------------------------------------------

def test_visibility_recorder_filters_and_queries():
    recorder = VisibilityRecorder()
    recorder.record_visibility("I", "F", 10.0)
    recorder.record_visibility("I", "F", 20.0)
    recorder.record_visibility("I", "T", 100.0)
    assert recorder.count() == 3
    assert recorder.mean("I", "F") == 15.0
    assert recorder.samples(dest="T") == [100.0]
    assert recorder.pairs() == [("I", "F"), ("I", "T")]
    assert recorder.percentile(100, "I", "F") == 20.0
    assert len(recorder.cdf()) == 3


def test_visibility_recorder_warmup():
    class FakeSim:
        now = 0.0

    sim = FakeSim()
    recorder = VisibilityRecorder(warmup_until=100.0)
    recorder.bind_clock(sim)
    recorder.record_visibility("I", "F", 5.0)
    sim.now = 200.0
    recorder.record_visibility("I", "F", 7.0)
    assert recorder.samples() == [7.0]


# -- op recorder ------------------------------------------------------------------

def test_op_recorder_throughput_window():
    recorder = OpRecorder()
    for at in (50.0, 150.0, 250.0, 1250.0):
        recorder.record_op("read", 1.0, at)
    assert recorder.ops_in_window(100.0, 1000.0) == 2
    assert recorder.throughput(0.0, 1000.0) == pytest.approx(3.0 / 1.0)


def test_op_recorder_throughput_bad_window():
    recorder = OpRecorder()
    with pytest.raises(ValueError):
        recorder.throughput(5.0, 5.0)


def test_op_recorder_latency_queries():
    recorder = OpRecorder()
    recorder.record_op("read", 1.0, 10.0)
    recorder.record_op("update", 3.0, 20.0)
    recorder.record_op("read", 2.0, 30.0)
    assert recorder.total_ops() == 3
    assert recorder.counts() == {"read": 2, "update": 1}
    assert recorder.mean_latency("read") == 1.5
    assert recorder.mean_latency() == 2.0
    assert recorder.latencies("read", start=25.0) == [2.0]
    assert recorder.latency_percentile(100) == 3.0
