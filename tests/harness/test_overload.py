"""Overload study: golden smoke summary + saturation qualitative checks.

The committed fixture pins the smoke-scale open-loop saturation sweep
(saturn + gentlerain over 500/2000/8000 ops/s per DC) byte-for-byte,
exactly like ``tests/harness/golden/five_way_smoke.json`` pins the
closed-loop comparison: any change to the arrival processes, the
streaming workload, the backpressure chain, or the kernel shows up as a
diff here.  If a change is *deliberate*, regenerate with::

    PYTHONPATH=src python -c "
    import json
    from repro.harness.experiments import overload_smoke_summary
    print(json.dumps(overload_smoke_summary(), indent=2, sort_keys=True))
    " > tests/harness/golden/overload_smoke.json

and update ``GOLDEN_SHA256`` below.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.harness.experiments import (OVERLOAD_SYSTEMS, Scale, overload,
                                       overload_smoke_summary)

GOLDEN = Path(__file__).parent / "golden" / "overload_smoke.json"
GOLDEN_SHA256 = \
    "243a48dc2b7427b14702f3b3a8ddee7498d7f23eba2dbec899bb697d8c74dd6a"


@pytest.fixture(scope="module")
def summary():
    return overload_smoke_summary()


def test_golden_overload_smoke_is_reproduced_byte_for_byte(summary):
    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    assert text == GOLDEN.read_text()
    assert hashlib.sha256(text.encode()).hexdigest() == GOLDEN_SHA256


def test_golden_fixture_covers_systems_and_rates():
    pinned = json.loads(GOLDEN.read_text())
    systems = {row["system"] for row in pinned["rows"]}
    assert systems == set(OVERLOAD_SYSTEMS) == {"saturn", "gentlerain"}
    rates = sorted({row["offered_ops_s_per_dc"] for row in pinned["rows"]})
    assert rates == [500.0, 2000.0, 8000.0]
    assert pinned["p99_slo_ms"] == 400.0
    assert pinned["goodput_floor"] == 0.95


def test_summary_reports_a_throughput_cliff(summary):
    """Both systems sustain the low rates and fall off the cliff at
    8000 ops/s/DC — the open loop exposes what a closed loop cannot."""
    for system in OVERLOAD_SYSTEMS:
        rows = {row["offered_ops_s_per_dc"]: row
                for row in summary["rows"] if row["system"] == system}
        assert rows[500.0]["sustainable"]
        assert rows[2000.0]["sustainable"]
        assert not rows[8000.0]["sustainable"]
        assert summary["max_sustainable_ops_s"][system] == 2000.0


def test_saturn_sheds_load_at_admission_baseline_does_not(summary):
    """Only Saturn runs the admission controller, so only Saturn shows
    rejections — and its goodput past the cliff must not trail the
    uncontrolled baseline's."""
    at_cliff = {row["system"]: row for row in summary["rows"]
                if row["offered_ops_s_per_dc"] == 8000.0}
    assert at_cliff["saturn"]["rejected"] > 0
    assert at_cliff["gentlerain"]["rejected"] == 0
    assert at_cliff["saturn"]["goodput"] >= at_cliff["gentlerain"]["goodput"]


def test_goodput_is_monotone_in_offered_load(summary):
    """More offered load never yields *better* goodput once queues grow."""
    for system in OVERLOAD_SYSTEMS:
        goodputs = [row["goodput"] for row in summary["rows"]
                    if row["system"] == system]  # rows are rate-ordered
        assert goodputs[0] >= goodputs[-1]
        assert all(0.0 < g <= 1.0 for g in goodputs)


def test_overload_sweep_is_deterministic():
    """Double-run equality on a reduced sweep: the whole open-loop path
    (arrival draws, client spawning, backpressure scheduling) is a pure
    function of the seed."""
    scale = Scale(duration=200.0, warmup=50.0, num_partitions=2, seed=11)

    def run():
        result = overload(scale, systems=("saturn",), rates=(2000.0,),
                          num_users=1000)
        return json.dumps(result, indent=2, sort_keys=True)

    assert run() == run()
