"""Cluster runner: construction and short runs for every system."""

import pytest

from repro.core.tree import TreeTopology
from repro.harness.runner import SYSTEMS, Cluster, ClusterConfig
from repro.harness.report import PaperComparison, format_cdf_summary, format_table
from repro.workloads.synthetic import SyntheticWorkload


def small_config(system, **overrides):
    return ClusterConfig(system=system, sites=("I", "F", "T"),
                         clients_per_dc=2, **overrides)


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(system="paxos")


def test_warmup_must_precede_duration():
    cluster = Cluster(small_config("eventual"), SyntheticWorkload())
    with pytest.raises(ValueError):
        cluster.run(duration=100.0, warmup=100.0)


@pytest.mark.parametrize("system", SYSTEMS)
def test_every_system_builds_and_completes_ops(system):
    workload = SyntheticWorkload(correlation="full")
    cluster = Cluster(small_config(system), workload)
    results = cluster.run(duration=300.0, warmup=50.0)
    assert results.ops_completed > 0
    assert results.throughput > 0
    assert results.duration == 300.0


def test_saturn_default_topology_is_star_on_first_site():
    cluster = Cluster(small_config("saturn"), SyntheticWorkload())
    topology = cluster.service.topology()
    assert set(topology.serializer_sites.values()) == {"I"}


def test_saturn_custom_topology_used():
    topo = TreeTopology.star("T", {"I": "I", "F": "F", "T": "T"})
    cluster = Cluster(small_config("saturn", saturn_topology=topo),
                      SyntheticWorkload())
    assert set(cluster.service.topology().serializer_sites.values()) == {"T"}


def test_replication_override():
    from repro.core.replication import ReplicationMap
    replication = ReplicationMap(["I", "F", "T"])
    for site in ("I", "F", "T"):
        replication.set_group(f"g{site}.0", [site])
    cluster = Cluster(small_config("eventual", replication=replication),
                      SyntheticWorkload())
    assert cluster.replication is replication


def test_clients_placed_at_their_sites():
    cluster = Cluster(small_config("eventual"), SyntheticWorkload())
    assert len(cluster.clients) == 6
    for client in cluster.clients:
        assert cluster.network.site_of(client.name) == client.home_dc


def test_visibility_recorded_during_run():
    workload = SyntheticWorkload(correlation="full", read_ratio=0.5)
    cluster = Cluster(small_config("eventual"), workload)
    results = cluster.run(duration=300.0, warmup=50.0)
    assert results.visibility.count() > 0
    assert results.mean_visibility() > 0


# -- report helpers --------------------------------------------------------------

def test_format_table():
    text = format_table(["x", "value"], [["a", 1.234], ["bb", 10.0]],
                        title="T")
    assert "T" in text
    assert "1.2" in text
    assert "bb" in text


def test_format_cdf_summary():
    text = format_cdf_summary("pair", [1.0, 2.0, 3.0])
    assert "mean=2.0ms" in text
    assert "p90" in text
    assert format_cdf_summary("empty", []) == "empty: (no samples)"


def test_paper_comparison():
    comparison = PaperComparison("fig-x")
    comparison.add("metric", "2%", 2.5, "ok")
    text = str(comparison)
    assert "fig-x" in text and "2.5" in text
