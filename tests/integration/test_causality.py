"""End-to-end causal-consistency validation for every system.

Each causally consistent system must produce zero violations under the
offline checker; the eventually consistent baseline is the positive control
that demonstrates the checker has teeth.
"""

import pytest

from repro.harness.runner import Cluster, ClusterConfig
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

CAUSAL_SYSTEMS = ("saturn", "saturn-ts", "gentlerain", "cure",
                  "eunomia", "okapi")


def run_checked(system, workload=None, duration=600.0, sites=("I", "F", "T"),
                seed=1, **overrides):
    workload = workload or SyntheticWorkload(
        correlation="full", read_ratio=0.7, value_size=8,
        keys_per_group=4, groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system=system, sites=sites,
                                    clients_per_dc=4, seed=seed, **overrides),
                      workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    results = cluster.run(duration=duration, warmup=100.0)
    return results, log


@pytest.mark.parametrize("system", CAUSAL_SYSTEMS)
def test_causal_systems_have_no_violations(system):
    results, log = run_checked(system)
    assert results.ops_completed > 500
    assert log.check() == []


def test_eventual_violates_causality_positive_control():
    """A hot shared keyspace with concurrent writers makes the eventually
    consistent store surface dependent updates out of order."""
    results, log = run_checked("eventual")
    assert any(v.kind == "causal-order" for v in log.check())


@pytest.mark.parametrize("system", ("saturn", "gentlerain", "cure"))
def test_causality_holds_under_seven_datacenters(system):
    workload = SyntheticWorkload(correlation="full", read_ratio=0.8,
                                 keys_per_group=4, groups_per_dc=1)
    results, log = run_checked(system, workload=workload,
                               sites=("NV", "NC", "O", "I", "F", "T", "S"),
                               duration=500.0)
    assert results.ops_completed > 500
    assert log.check() == []


def test_saturn_causality_under_partial_replication():
    workload = SyntheticWorkload(correlation="degree", degree=2,
                                 read_ratio=0.7, remote_read_fraction=0.2,
                                 keys_per_group=4)
    results, log = run_checked("saturn", workload=workload,
                               sites=("I", "F", "T"), duration=800.0)
    assert results.ops_completed > 200
    assert log.check() == []


def test_saturn_causality_with_m_configuration():
    from repro.harness.experiments import m_configuration
    sites = ("I", "F", "T", "S")
    topology = m_configuration(sites, beam_width=3)
    workload = SyntheticWorkload(correlation="full", read_ratio=0.7,
                                 keys_per_group=4, groups_per_dc=2)
    results, log = run_checked("saturn", workload=workload, sites=sites,
                               saturn_topology=topology)
    assert results.ops_completed > 500
    assert log.check() == []


def test_saturn_causality_with_clock_skew():
    """Large clock skew must not break correctness (only timestamps drift);
    the monotonic label generation handles it."""
    workload = SyntheticWorkload(correlation="full", read_ratio=0.7,
                                 keys_per_group=4, groups_per_dc=2)
    results, log = run_checked("saturn", workload=workload,
                               max_clock_skew=20.0)
    assert log.check() == []


def test_saturn_causality_without_parallel_apply():
    results, log = run_checked("saturn", parallel_concurrent_apply=False)
    assert results.ops_completed > 500
    assert log.check() == []


@pytest.mark.parametrize("seed", (2, 3))
def test_causality_stable_across_seeds(seed):
    results, log = run_checked("saturn", seed=seed)
    assert log.check() == []
