"""Determinism and convergence of full runs."""

import pytest

from repro.harness.runner import Cluster, ClusterConfig
from repro.workloads.synthetic import SyntheticWorkload


def run(seed, system="saturn", **config_overrides):
    workload = SyntheticWorkload(correlation="full", read_ratio=0.8,
                                 keys_per_group=8, groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system=system, sites=("I", "F", "T"),
                                    clients_per_dc=4, seed=seed,
                                    **config_overrides), workload)
    results = cluster.run(duration=500.0, warmup=100.0)
    return cluster, results


def test_identical_seeds_identical_executions():
    cluster_a, results_a = run(seed=7)
    cluster_b, results_b = run(seed=7)
    assert results_a.ops_completed == results_b.ops_completed
    assert results_a.throughput == results_b.throughput
    assert cluster_a.sim.events_executed == cluster_b.sim.events_executed
    assert (results_a.visibility.samples() == results_b.visibility.samples())


def test_double_run_identical_event_trace_digests():
    """Bit-level determinism: two runs with the same seed produce the
    identical delivery trace — a SHA-256 over every (time, src, dst,
    message-type[, label]) tuple — with the runtime FIFO checker enabled.
    The checker itself must also come back clean on both runs."""
    cluster_a, _ = run(seed=13, hazard_monitor=True)
    cluster_b, _ = run(seed=13, hazard_monitor=True)
    report_a = cluster_a.hazard_monitor.report()
    report_b = cluster_b.hazard_monitor.report()
    assert report_a.ok, report_a.summary()
    assert report_b.ok, report_b.summary()
    assert report_a.messages_delivered == report_b.messages_delivered
    assert report_a.trace_digest == report_b.trace_digest

    cluster_c, _ = run(seed=14, hazard_monitor=True)
    assert cluster_c.hazard_monitor.report().trace_digest != report_a.trace_digest


def test_delivery_batching_does_not_change_results():
    """Untraced runs batch same-destination deliveries into merged events;
    traced runs schedule one event per message.  Both paths must produce
    the same simulated outcome — only the host-side event count differs."""
    cluster_plain, results_plain = run(seed=7)
    cluster_traced, results_traced = run(seed=7, hazard_monitor=True)
    assert results_plain.ops_completed == results_traced.ops_completed
    assert results_plain.throughput == results_traced.throughput
    assert (results_plain.visibility.samples()
            == results_traced.visibility.samples())
    # batching only merges events, never drops messages
    assert (cluster_plain.network.messages_sent
            == cluster_traced.network.messages_sent)
    assert (cluster_plain.sim.events_executed
            <= cluster_traced.sim.events_executed)


def test_different_seeds_differ():
    _, results_a = run(seed=7)
    _, results_b = run(seed=8)
    assert results_a.visibility.samples() != results_b.visibility.samples()


@pytest.mark.parametrize("system", ("saturn", "gentlerain", "cure",
                                    "eventual"))
def test_replicas_converge_after_quiescence(system):
    """Once clients stop and the pipes drain, every replicated key holds
    the same version at every datacenter that replicates it."""
    cluster, _ = run(seed=3, system=system)
    for client in cluster.clients:
        client.stop()
    cluster.sim.run(until=cluster.sim.now + 2000.0)
    dcs = list(cluster.datacenters.values())
    keys = set()
    for dc in dcs:
        for partition in dc.store.partitions:
            keys.update(partition._data)
    assert keys, "the run must have written something"
    for key in keys:
        versions = set()
        for dc in dcs:
            stored = dc.store.get(key)
            if stored is not None:
                versions.add((stored.label.ts, stored.label.src))
        assert len(versions) == 1, f"divergence on {key}: {versions}"
