"""Determinism and convergence of full runs."""

import pytest

from repro.harness.runner import Cluster, ClusterConfig
from repro.workloads.synthetic import SyntheticWorkload


def run(seed, system="saturn"):
    workload = SyntheticWorkload(correlation="full", read_ratio=0.8,
                                 keys_per_group=8, groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system=system, sites=("I", "F", "T"),
                                    clients_per_dc=4, seed=seed), workload)
    results = cluster.run(duration=500.0, warmup=100.0)
    return cluster, results


def test_identical_seeds_identical_executions():
    cluster_a, results_a = run(seed=7)
    cluster_b, results_b = run(seed=7)
    assert results_a.ops_completed == results_b.ops_completed
    assert results_a.throughput == results_b.throughput
    assert cluster_a.sim.events_executed == cluster_b.sim.events_executed
    assert (results_a.visibility.samples() == results_b.visibility.samples())


def test_different_seeds_differ():
    _, results_a = run(seed=7)
    _, results_b = run(seed=8)
    assert results_a.visibility.samples() != results_b.visibility.samples()


@pytest.mark.parametrize("system", ("saturn", "gentlerain", "cure",
                                    "eventual"))
def test_replicas_converge_after_quiescence(system):
    """Once clients stop and the pipes drain, every replicated key holds
    the same version at every datacenter that replicates it."""
    cluster, _ = run(seed=3, system=system)
    for client in cluster.clients:
        client.stop()
    cluster.sim.run(until=cluster.sim.now + 2000.0)
    dcs = list(cluster.datacenters.values())
    keys = set()
    for dc in dcs:
        for partition in dc.store.partitions:
            keys.update(partition._data)
    assert keys, "the run must have written something"
    for key in keys:
        versions = set()
        for dc in dcs:
            stored = dc.store.get(key)
            if stored is not None:
                versions.add((stored.label.ts, stored.label.src))
        assert len(versions) == 1, f"divergence on {key}: {versions}"
