"""Fault tolerance: Saturn outages never impair data availability (§6.1)."""

import pytest

from repro.harness.runner import Cluster, ClusterConfig
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

SITES = ("I", "F", "T")


def build(ping_period=5.0, seed=1):
    workload = SyntheticWorkload(correlation="full", read_ratio=0.7,
                                 keys_per_group=4, groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system="saturn", sites=SITES,
                                    clients_per_dc=4, seed=seed,
                                    ping_period=ping_period), workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    return cluster, log


@pytest.mark.slow
def test_outage_detected_and_updates_keep_flowing():
    cluster, log = build()
    cluster.sim.schedule(300.0, lambda: cluster.service.fail_tree())
    results = cluster.run(duration=2500.0, warmup=100.0)
    # every datacenter noticed and fell back
    for dc in cluster.datacenters.values():
        assert dc.saturn_down
    # ops continued well past the outage
    late_ops = results.ops.ops_in_window(1500.0, 2500.0)
    assert late_ops > 100
    # and updates kept becoming visible remotely (timestamp order)
    late_visibility = [
        lat for pair in results.visibility.pairs()
        for lat in results.visibility.samples(*pair)]
    assert late_visibility
    assert log.check() == []


def test_visibility_degrades_but_survives_outage():
    """After the outage visibility jumps to timestamp-order levels but the
    system keeps delivering (availability preserved)."""
    cluster, _ = build()
    cluster.sim.schedule(300.0, lambda: cluster.service.fail_tree())
    results = cluster.run(duration=2500.0, warmup=1200.0)
    # post-outage samples only (warmup discards the healthy phase)
    assert results.visibility.count() > 0
    assert results.visibility.mean("I", "F") >= 50.0  # fallback is slower


def test_no_outage_without_failure():
    cluster, log = build()
    cluster.run(duration=800.0, warmup=100.0)
    assert all(not dc.saturn_down for dc in cluster.datacenters.values())
    assert log.check() == []


@pytest.mark.slow
def test_fallback_preserves_causality_across_seeds():
    for seed in (2, 5):
        cluster, log = build(seed=seed)
        cluster.sim.schedule(250.0, lambda c=cluster: c.service.fail_tree())
        cluster.run(duration=1800.0, warmup=100.0)
        assert log.check() == []
