"""The paper's Fig. 3 worked example, end to end (§5.1).

Four datacenters; some items replicated at {dc1, dc4}, others at
{dc3, dc4}.  The bulk transfer dc1->dc4 is slow (10 units) while dc3 and
dc4 are adjacent (1 unit).  Updates: a at dc1, then b -> c at dc3, all
interesting dc4.

If Saturn delivers a's label to dc4 *early* (the metadata path is much
shorter than the slow bulk path), serializing abc creates a false
dependency: b and c — deliverable at times ~5 and ~7 — stall behind a's
payload until ~12.  The paper's answer is the bca serialization, obtained
by artificially delaying a's label (§5.4).  This test reproduces both
behaviours with the real solver in the loop.
"""

import pytest

from repro.config.solver import optimize_delays
from repro.core.replication import ReplicationMap
from repro.core.tree import TreeTopology
from repro.datacenter.datacenter import DatacenterParams, SaturnDatacenter
from repro.core.service import SaturnService
from repro.harness.runner import MetricsHub
from repro.sim.clock import ClockFactory
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry

SITES = ["d1", "d2", "d3", "d4"]


def latency_model():
    """Metadata links are short hops; the *direct* d1-d4 path (which the
    bulk service uses) is long — the paper's 'bulk data is not necessarily
    sent through the shortest path' situation."""
    model = LatencyModel(local_latency=0.05)
    model.set("d1", "d2", 1.0)
    model.set("d2", "d3", 1.0)
    model.set("d3", "d4", 1.0)
    model.set("d1", "d3", 2.0)
    model.set("d2", "d4", 2.0)
    model.set("d1", "d4", 10.0)  # slow bulk path
    return model


def build(delays):
    sim = Simulator()
    rng = RngRegistry(seed=4)
    network = Network(sim, latency_model=latency_model(), rng=rng)
    replication = ReplicationMap(SITES)
    replication.set_group("gX", ["d1", "d4"])  # item of update a
    replication.set_group("gY", ["d3", "d4"])  # items of updates b, c
    topology = TreeTopology(
        serializer_sites={"s1": "d1", "s2": "d2", "s3": "d3", "s4": "d4"},
        edges=[("s1", "s2"), ("s2", "s3"), ("s3", "s4")],
        attachments={"d1": "s1", "d2": "s2", "d3": "s3", "d4": "s4"},
        delays=delays)
    service = SaturnService(sim, network, replication)
    service.install_tree(topology, epoch=0)
    metrics = MetricsHub(sim)
    clocks = ClockFactory(sim, rng, max_skew=0.0)
    dcs = {}
    for site in SITES:
        params = DatacenterParams(name=site, site=site, num_partitions=1,
                                  sink_batch_period=0.25,
                                  sink_heartbeat_period=0,
                                  bulk_heartbeat_period=0)
        dc = SaturnDatacenter(sim, params, replication, CostModel(),
                              clocks.create(), metrics=metrics)
        dc.attach_network(network)
        network.place(dc.name, site)
        dc.saturn = service
        dc.start()
        dcs[site] = dc
    return sim, dcs, metrics, topology


def run_scenario(delays):
    sim, dcs, metrics, topology = build(delays)
    visible_at = {}
    for site in SITES:
        original = dcs[site].on_remote_visible

        def hook(payload, site=site, original=original):
            visible_at[(payload.key, site)] = sim.now
            original(payload)

        dcs[site].on_remote_visible = hook
        dcs[site].proxy.dc = dcs[site]

    def write(dc, key, at):
        def _go():
            partition = dcs[dc].store.partition_for(key)
            dcs[dc].gears[partition.index].update(key, 8, None)
        sim.schedule_at(at, _go)

    write("d1", "gX:a", 2.0)   # a
    write("d3", "gY:b", 4.0)   # b
    write("d3", "gY:c", 6.0)   # c (same origin after b: causally ordered)
    sim.run(until=60.0)
    return visible_at


def test_premature_labels_create_false_dependencies():
    """Without artificial delays, a's label reaches dc4 in ~3 units while
    its payload needs 10: b and c stall behind it (the abc serialization
    of §5.1)."""
    visible = run_scenario(delays={})
    assert visible[("gX:a", "d4")] >= 12.0
    # false dependency: b and c forced to wait for a's bulk transfer
    assert visible[("gY:b", "d4")] >= 11.0
    assert visible[("gY:c", "d4")] >= 11.0


def test_solver_delays_restore_bca_serialization():
    """The Definition-2 solver adds ~7 units on d1's edge so a's label
    arrives with its payload; b and c become visible as soon as their
    1-unit bulk transfer completes."""
    def lat(a, b):
        return 0.0 if a == b else latency_model().get(a, b)

    base = build({})[3]
    weights = {(i, j): 1.0 for i in SITES for j in SITES if i != j}
    # the d1->d4 path matters most in the example
    weights[("d1", "d4")] = 5.0
    delays = optimize_delays(base, {s: s for s in SITES}, lat, weights)
    assert delays, "the solver must add delays for the slow bulk path"
    visible = run_scenario(delays)
    # data freshness of a unchanged (payload-bound)
    assert visible[("gX:a", "d4")] == pytest.approx(12.0, abs=2.0)
    # b and c no longer blocked: visible right after their bulk transfer
    assert visible[("gY:b", "d4")] <= 8.0
    assert visible[("gY:c", "d4")] <= 9.5
