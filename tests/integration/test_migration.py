"""Client migration (§4.4): remote reads through migration labels, and the
speedup over the conservative update-label attach path."""

import pytest

from repro.harness.runner import Cluster, ClusterConfig
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

SITES = ("I", "F", "T")


def run(system, remote_fraction=0.3, seed=1):
    workload = SyntheticWorkload(correlation="degree", degree=2,
                                 read_ratio=0.8,
                                 remote_read_fraction=remote_fraction,
                                 keys_per_group=4)
    cluster = Cluster(ClusterConfig(system=system, sites=SITES,
                                    clients_per_dc=3, seed=seed), workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    results = cluster.run(duration=1500.0, warmup=200.0)
    return results, log


def test_remote_reads_complete_and_stay_causal():
    results, log = run("saturn")
    assert results.ops.counts().get("remote_read", 0) > 10
    assert log.check() == []


def test_remote_reads_complete_on_baselines():
    for system in ("gentlerain", "cure"):
        results, log = run(system)
        assert results.ops.counts().get("remote_read", 0) > 5
        assert log.check() == []


def test_saturn_migration_faster_than_gentlerain_attach():
    """Saturn's migration labels travel origin->target directly; GentleRain
    attaches only once the GST passes the client's stamp (furthest DC)."""
    saturn, _ = run("saturn")
    gentlerain, _ = run("gentlerain")
    assert (saturn.ops.mean_latency("remote_read")
            < gentlerain.ops.mean_latency("remote_read"))


def test_migration_latency_scales_with_distance():
    results, _ = run("saturn", remote_fraction=0.5)
    lats = results.ops.latencies("remote_read")
    # every remote read pays at least two WAN round trips
    assert all(lat >= 20.0 for lat in lats)
