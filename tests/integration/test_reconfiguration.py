"""Online reconfiguration (§6.2): fast path and failure path end-to-end."""

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

SITES = ("I", "F", "T")


def build(seed=1):
    workload = SyntheticWorkload(correlation="full", read_ratio=0.7,
                                 keys_per_group=4, groups_per_dc=2)
    c1 = TreeTopology.star("I", {s: s for s in SITES})
    cluster = Cluster(ClusterConfig(system="saturn", sites=SITES,
                                    clients_per_dc=4, seed=seed,
                                    saturn_topology=c1), workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    manager = ReconfigurationManager(cluster.service,
                                     list(cluster.datacenters.values()))
    c2 = TreeTopology.star("T", {s: s for s in SITES})
    return cluster, log, manager, c2


@pytest.mark.slow
def test_fast_path_completes_quickly():
    cluster, log, manager, c2 = build()
    cluster.sim.schedule(300.0, lambda: manager.reconfigure(c2))
    cluster.run(duration=1200.0, warmup=100.0)
    assert manager.complete()
    times = [t for per_dc in manager.reconfiguration_times().values()
             for t in per_dc]
    assert times
    # bounded by the largest metadata path in C1 (paper: < 200 ms)
    assert max(times) < 300.0
    assert log.check() == []


@pytest.mark.slow
def test_fast_path_no_updates_lost():
    cluster, log, manager, c2 = build()
    cluster.sim.schedule(300.0, lambda: manager.reconfigure(c2))
    results = cluster.run(duration=1500.0, warmup=100.0)
    # writes issued after the switch still replicate everywhere
    late = results.ops.ops_in_window(800.0, 1500.0)
    assert late > 100
    assert log.check() == []


@pytest.mark.slow
def test_failure_path_reconfiguration():
    cluster, log, manager, c2 = build()

    def break_and_switch():
        cluster.service.fail_tree(epoch=0)
        manager.reconfigure(c2, emergency=True)

    cluster.sim.schedule(300.0, break_and_switch)
    results = cluster.run(duration=2500.0, warmup=100.0)
    assert manager.complete()
    late = results.ops.ops_in_window(1500.0, 2500.0)
    assert late > 100
    assert log.check() == []


def test_new_epoch_used_after_switch():
    cluster, log, manager, c2 = build()
    cluster.sim.schedule(300.0, lambda: manager.reconfigure(c2))
    cluster.run(duration=1200.0, warmup=100.0)
    epoch = manager.last_epoch
    for dc in cluster.datacenters.values():
        assert dc.proxy.current_epoch == epoch
        assert dc.sink_epoch == epoch
    assert cluster.service.current_epoch == epoch


@pytest.mark.slow
def test_failure_path_visibility_resumes():
    """After the emergency switch, remote updates must keep becoming
    visible through the new tree (regression: payloads parked for the
    timestamp path used to strand the C2 queue)."""
    cluster, log, manager, c2 = build()

    def break_and_switch():
        cluster.service.fail_tree(epoch=0)
        manager.reconfigure(c2, emergency=True)

    cluster.sim.schedule(300.0, break_and_switch)
    # count only visibility events well after the switch completed
    results = cluster.run(duration=3000.0, warmup=1600.0)
    assert manager.complete()
    assert results.visibility.count() > 100
    # pairs the C2 star (Tokyo) serves directly are tree-fast again
    # (T->F labels go T->serializer@T->F: ~the 118 ms bulk latency)
    assert results.visibility.mean("T", "F") < 140.0
    assert log.check() == []
