"""Property-based test: on a *random* serializer tree with random causal
update chains, every datacenter receives labels in an order that respects
causality (the paper's footnote-1 lowest-common-ancestor argument)."""

from hypothesis import given, settings, strategies as st

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.datacenter.messages import LabelBatch
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class RecorderDC(Process):
    def __init__(self, sim, dc_name):
        super().__init__(sim, f"dc:{dc_name}")
        self.labels = []

    def receive(self, sender, message):
        if isinstance(message, LabelBatch):
            self.labels.extend(message.labels)


def random_tree(rng, n_dcs):
    """Random serializer tree: one serializer per datacenter site, random
    spanning-tree edges (random Prüfer-ish attachment)."""
    names = [f"s{i}" for i in range(n_dcs)]
    sites = {name: f"site{i}" for i, name in enumerate(names)}
    edges = []
    for i in range(1, n_dcs):
        parent = rng.randrange(i)
        edges.append((names[parent], names[i]))
    attachments = {f"dc{i}": names[i] for i in range(n_dcs)}
    return TreeTopology(serializer_sites=sites, edges=edges,
                        attachments=attachments)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_dcs=st.integers(min_value=2, max_value=6),
       n_chains=st.integers(min_value=1, max_value=4),
       chain_length=st.integers(min_value=2, max_value=5))
def test_random_trees_deliver_causal_chains_in_order(seed, n_dcs, n_chains,
                                                     chain_length):
    import random as random_module
    rng = random_module.Random(seed)
    sim = Simulator()
    model = LatencyModel(local_latency=0.25)
    site_names = [f"site{i}" for i in range(n_dcs)]
    for i, a in enumerate(site_names):
        for b in site_names[i + 1:]:
            model.set(a, b, rng.uniform(1.0, 120.0))
    network = Network(sim, latency_model=model, rng=RngRegistry(seed=seed))
    dcs = [f"dc{i}" for i in range(n_dcs)]
    replication = ReplicationMap(dcs)
    topology = random_tree(rng, n_dcs)
    service = SaturnService(sim, network, replication)
    service.install_tree(topology, epoch=0)
    recorders = {}
    for i, dc in enumerate(dcs):
        recorder = RecorderDC(sim, dc)
        recorder.attach_network(network)
        network.place(recorder.name, f"site{i}")
        recorders[dc] = recorder

    # build causal chains: each next update is issued at the datacenter
    # where the previous one became visible (simulating a roaming client)
    chains = []
    ts = 0.0
    for c in range(n_chains):
        chain = []
        origin = rng.choice(dcs)
        for k in range(chain_length):
            ts += 1.0
            label = Label(LabelType.UPDATE, src=f"{origin}/g0", ts=ts,
                          target=f"chain{c}", origin_dc=origin)
            chain.append(label)
            origin = rng.choice(dcs)
        chains.append(chain)

    # inject each chain link only after the previous one has reached the
    # issuing datacenter (causality: read-then-write)
    def inject(label, when):
        ingress = service.ingress_process(label.origin_dc, 0)
        sim.schedule_at(when, lambda: network.send(
            f"dc:{label.origin_dc}", ingress, LabelBatch((label,), epoch=0)))

    # conservative: stagger chain links far enough apart that the previous
    # link has propagated everywhere (upper bound on any path: 6*120ms)
    spacing = 1000.0
    for chain in chains:
        for k, label in enumerate(chain):
            inject(label, when=1.0 + k * spacing)
    sim.run()

    for dc, recorder in recorders.items():
        seen = [l for l in recorder.labels if l.type is LabelType.UPDATE]
        for chain in chains:
            expected = [l for l in chain if l.origin_dc != dc]
            positions = [seen.index(l) for l in expected if l in seen]
            assert positions == sorted(positions), (
                f"causal chain delivered out of order at {dc}")
