"""Visibility-latency shape assertions: who waits for what.

These encode the paper's qualitative claims (§7.3.1/§7.3.3):

* eventual consistency is the lower bound (bulk latency);
* Saturn with a good tree tracks the lower bound closely;
* the P-configuration and GentleRain pay the *longest* network travel time;
* Cure pays the origin->destination latency plus stabilization.
"""

import pytest

from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig
from repro.workloads.synthetic import SyntheticWorkload

SITES = ("I", "F", "T")  # I-F: 10ms, I-T: 107ms, F-T: 118ms (Table 1)


def run(system, **overrides):
    workload = SyntheticWorkload(correlation="full", read_ratio=0.8,
                                 keys_per_group=8, groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system=system, sites=SITES,
                                    clients_per_dc=4, **overrides), workload)
    return cluster.run(duration=800.0, warmup=200.0)


@pytest.fixture(scope="module")
def results():
    out = {"eventual": run("eventual"),
           "saturn-ts": run("saturn-ts"),
           "gentlerain": run("gentlerain"),
           "cure": run("cure")}
    tree = TreeTopology(
        serializer_sites={"s0": "I", "s1": "F", "s2": "T"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"I": "s0", "F": "s1", "T": "s2"})
    out["saturn"] = run("saturn", saturn_topology=tree)
    return out


def test_eventual_visibility_tracks_link_latency(results):
    vis = results["eventual"].visibility
    assert 10.0 <= vis.mean("I", "F") <= 25.0
    assert 107.0 <= vis.mean("I", "T") <= 125.0


def test_saturn_close_to_optimal(results):
    saturn = results["saturn"].visibility
    optimal = results["eventual"].visibility
    # near-optimal on the short link (the paper: a few ms of extra delay)
    assert saturn.mean("I", "F") <= optimal.mean("I", "F") + 10.0
    assert saturn.mean() <= optimal.mean() + 15.0


def test_p_configuration_pays_longest_travel_time(results):
    """Timestamp stability needs every datacenter's cut: ~max latency."""
    ts_mode = results["saturn-ts"].visibility
    assert ts_mode.mean("I", "F") >= 100.0  # far above the 10 ms link


def test_gentlerain_pays_furthest_dc(results):
    gentlerain = results["gentlerain"].visibility
    assert gentlerain.mean("I", "F") >= 100.0
    # and is insensitive to the origin's proximity
    spread = abs(gentlerain.mean("I", "F") - gentlerain.mean("F", "I"))
    assert spread <= 30.0


def test_cure_visibility_tracks_origin_latency(results):
    cure = results["cure"].visibility
    assert cure.mean("I", "F") <= 40.0          # 10 ms link + stabilization
    assert 100.0 <= cure.mean("I", "T") <= 140.0


def test_ordering_of_systems_on_short_link(results):
    short = {name: res.visibility.mean("I", "F")
             for name, res in results.items()}
    assert short["eventual"] <= short["saturn"]
    assert short["saturn"] < short["gentlerain"]
    assert short["cure"] < short["gentlerain"]


def test_saturn_beats_gentlerain_on_average(results):
    assert (results["saturn"].visibility.mean()
            < results["gentlerain"].visibility.mean())
