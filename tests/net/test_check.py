"""The offline causal checker over per-node visibility logs."""

import json

from repro.net.check import check_cluster, check_events
from repro.net.spec import chain_smoke_spec


def _events_for(spec, *, drop=(), leak=(), swap=(), fail_read=False):
    """Synthesize per-DC event streams for every scripted update.

    ``drop``: (dc, key) pairs withheld from that DC's stream;
    ``leak``: (dc, key) pairs added even at non-replicas;
    ``swap``: DCs whose event order is reversed;
    ``fail_read``: suppress all read events."""
    replication = spec.replication()
    updates = spec.scripted_updates()
    events = {site: [] for site in spec.sites}
    for origin, key in updates:
        for site in spec.sites:
            wanted = site in replication.replicas(key)
            if (site, key) in drop:
                wanted = False
            if (site, key) in leak:
                wanted = True
            if not wanted:
                continue
            kind = "update" if site == origin else "visible"
            events[site].append({"event": kind, "dc": site, "key": key,
                                 "origin": origin, "ts": 1.0, "src": "s"})
    for site in swap:
        events[site].reverse()
    if not fail_read:
        for client in spec.clients:
            for op in client["script"]:
                if op["op"] == "read":
                    events[client["dc"]].append({
                        "event": "read", "client": client["id"],
                        "dc": client["dc"], "key": op["key"],
                        "version": [1.0, "s"]})
    return events


def test_conforming_run_passes_all_checks():
    spec = chain_smoke_spec(3)
    result = check_events(spec, _events_for(spec))
    assert result.ok, result.problems
    assert result.sequences["T"] == [("I", "g0:a"), ("I", "g0:b"),
                                     ("F", "g0:y")]


def test_missing_visibility_is_a_completeness_problem():
    spec = chain_smoke_spec(3)
    result = check_events(
        spec, _events_for(spec, drop=(("T", "g0:y"),)))
    assert any("completeness" in p and "g0:y" in p
               for p in result.problems)


def test_partial_replication_leak_is_reported():
    spec = chain_smoke_spec(3)
    result = check_events(
        spec, _events_for(spec, leak=(("T", "g1:p"),)))
    assert any("partial-replication" in p and "g1:p" in p
               for p in result.problems)


def test_causal_inversion_is_reported():
    spec = chain_smoke_spec(3)
    result = check_events(spec, _events_for(spec, swap=("T",)))
    assert any("causal-order" in p for p in result.problems)


def test_versionless_reads_are_reported():
    spec = chain_smoke_spec(3)
    result = check_events(spec, _events_for(spec, fail_read=True))
    assert any("read" in p and "g0:a" in p for p in result.problems)


def test_check_cluster_reads_logs_from_disk(tmp_path):
    spec = chain_smoke_spec(2)
    spec.save(tmp_path / "spec.json")
    for site, events in _events_for(spec).items():
        node_dir = tmp_path / f"dc-{site}"
        node_dir.mkdir()
        with open(node_dir / "visibility.jsonl", "w",
                  encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
    result = check_cluster(tmp_path)
    assert result.ok, result.problems
    assert result.to_json()["ok"] is True
    assert result.event_counts["I"] > 0
