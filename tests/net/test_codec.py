"""Wire-codec unit, property, and golden-bytes tests.

The property test is the executable form of satellite guarantee 3: every
registered wire message survives an encode/decode round trip with value
equality *and* canonical-byte equality (so re-encoding a decoded message
is byte-stable — required for frame determinism).  The golden fixture
pins the frame bytes themselves: an accidental format change (key order,
tag names, separators) breaks cross-version clusters even if round trips
still pass, and only a committed byte pin catches it.
"""

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.explicit import ExplicitPayload
from repro.core.label import Label, LabelType
from repro.datacenter.messages import (BulkHeartbeat, ClientRead,
                                       ClientUpdate, LabelBatch,
                                       RemotePayload)
from repro.net import codec

GOLDEN = Path(__file__).parent / "golden" / "frames.hex"


def _label(ts: float = 12.5, src: str = "I:g0", key: str = "g0:a",
           origin: str = "I") -> Label:
    return Label(LabelType.UPDATE, src, ts, key, origin)


def golden_frames():
    """The committed frame corpus: one frame per interesting shape."""
    label = _label()
    return [
        codec.encode_frame(
            "client:w", "dc:I",
            ClientUpdate("w", "g0:a", 2, label)),
        codec.encode_frame("client:w", "dc:I", ClientRead("w", "g0:a")),
        codec.encode_frame(
            "dc:I", "ser:e0:sI",
            LabelBatch(labels=(label, _label(13.0, "I:g1", "g0:b")))),
        codec.encode_frame(
            "dc:I", "dc:F", RemotePayload(label, "g0:a", 2, 10.25)),
        codec.encode_frame("dc:F", "dc:T", BulkHeartbeat("F", 42.0)),
        codec.encode_frame(
            "dc:I", "dc:F",
            ExplicitPayload(label, "g0:a", 2, 10.25,
                            frozenset({("g0:b", (11.0, "I:g1")),
                                       ("g0:c", (9.0, "I:g0"))}))),
    ]


# -- unit --------------------------------------------------------------------

def test_scalar_and_container_round_trip():
    values = [None, True, False, 0, -7, 1.5, "x", (),
              (1, ("a", 2.5), None), frozenset({3, 1, 2}),
              LabelType.HEARTBEAT, _label()]
    for value in values:
        assert codec.decode_value(codec.encode_value(value)) == value


def test_frame_round_trip_preserves_addressing():
    frame = codec.encode_frame("a", "b", ClientRead("c", "k"))
    (length,) = codec.FRAME_HEADER.unpack(frame[:4])
    src, dst, msg = codec.decode_frame_body(frame[4:4 + length])
    assert (src, dst, msg) == ("a", "b", ClientRead("c", "k"))


def test_encoding_is_canonical():
    msg = ClientUpdate("w", "g0:a", 2, _label())
    assert codec.encode_message(msg) == codec.encode_message(msg)
    decoded = codec.decode_message(codec.encode_message(msg))
    assert codec.encode_message(decoded) == codec.encode_message(msg)


def test_frozenset_encoding_is_order_independent():
    a = frozenset({("k1", 1.0), ("k2", 2.0), ("k3", 3.0)})
    b = frozenset(reversed(sorted(a)))
    assert codec.encode_message(a) == codec.encode_message(b)


def test_mutable_containers_are_rejected():
    for bad in ([1], {"k": 1}, {1, 2}, bytearray(b"x")):
        with pytest.raises(codec.CodecError):
            codec.encode_value(bad)


def test_non_finite_floats_are_rejected():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(codec.CodecError):
            codec.encode_value(bad)


def test_unregistered_dataclass_is_rejected():
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class NotWire:
        x: int

    with pytest.raises(codec.CodecError):
        codec.encode_value(NotWire(1))
    with pytest.raises(codec.CodecError):
        codec.decode_value({"__d": ["NotWire", {"x": 1}]})


def test_duplicate_registration_is_rejected():
    with pytest.raises(codec.CodecError):
        codec.register(Label)


def test_malformed_bodies_are_codec_errors():
    for bad in (b"\xff\xfe", b"not json", b'{"src": "a"}', b"[1,2]"):
        with pytest.raises(codec.CodecError):
            codec.decode_frame_body(bad)
    with pytest.raises(codec.CodecError):
        codec.decode_value({"__x": []})
    with pytest.raises(codec.CodecError):
        codec.decode_value([1, 2])


# -- property: every registered message round-trips --------------------------

st.register_type_strategy(
    float, st.floats(allow_nan=False, allow_infinity=False))

_MESSAGE_STRATEGY = st.one_of([
    st.from_type(cls)
    for _, cls in sorted(codec.registered_messages().items())
])


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(message=_MESSAGE_STRATEGY)
def test_every_registered_message_round_trips(message):
    encoded = codec.encode_message(message)
    decoded = codec.decode_message(encoded)
    assert type(decoded) is type(message)
    # canonical-byte equality is stronger than == (Label.__eq__ compares
    # only (ts, src)); every field must survive
    assert codec.encode_message(decoded) == encoded
    assert decoded == message


# -- golden bytes ------------------------------------------------------------

def test_golden_frame_bytes_are_stable():
    expected = [bytes.fromhex(line) for line in
                GOLDEN.read_text(encoding="utf-8").split()]
    actual = golden_frames()
    assert len(actual) == len(expected)
    for index, (got, want) in enumerate(zip(actual, expected)):
        assert got == want, (
            f"frame {index} drifted from the committed golden bytes — "
            "this breaks wire compatibility between versions; if the "
            "format change is deliberate, regenerate tests/net/golden/"
            "frames.hex and say so loudly in the changelog")


def test_golden_frames_still_decode():
    for frame in golden_frames():
        (length,) = codec.FRAME_HEADER.unpack(frame[:4])
        src, dst, msg = codec.decode_frame_body(frame[4:])
        assert length == len(frame) - 4
        assert src and dst
        assert codec.encode_frame(src, dst, msg) == frame
