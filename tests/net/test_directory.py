"""Directory service: roster state machine, JSON-line protocol, clients."""

import asyncio
import json

from repro.net.directory import (DirectoryClient, DirectoryServer,
                                 request_async)


def test_register_flips_phase_when_roster_completes():
    server = DirectoryServer(["n1", "n2"])
    assert server.phase == "boot"
    server.handle({"op": "register", "node": "n1", "host": "h", "port": 1,
                   "processes": ["p1"]})
    assert server.phase == "boot"
    reply = server.handle({"op": "register", "node": "n2", "host": "h",
                           "port": 2, "processes": ["p2"]})
    assert server.phase == "run"
    assert reply == {"ok": True, "phase": "run"}


def test_lookup_status_phase_and_snapshot():
    server = DirectoryServer(["n1"])
    lookup = server.handle({"op": "lookup"})
    assert lookup["complete"] is False and lookup["nodes"] == {}
    server.handle({"op": "register", "node": "n1", "host": "h", "port": 9,
                   "processes": ["p"]})
    lookup = server.handle({"op": "lookup"})
    assert lookup["complete"] is True
    assert lookup["nodes"]["n1"] == {"host": "h", "port": 9,
                                    "processes": ["p"]}
    server.handle({"op": "status", "node": "n1", "report": {"ops": 3}})
    snapshot = server.handle({"op": "snapshot"})
    assert snapshot["state"]["reports"]["n1"] == {"ops": 3}
    assert server.handle({"op": "phase", "phase": "stop"})["ok"] is True
    assert server.phase == "stop"
    assert server.handle({"op": "phase", "phase": "bogus"})["ok"] is False
    assert server.handle({"op": "wat"})["ok"] is False


def test_state_persists_to_json_file(tmp_path):
    state_path = tmp_path / "directory.json"
    server = DirectoryServer(["n1"], state_path=state_path)
    server.handle({"op": "register", "node": "n1", "host": "h", "port": 5,
                   "processes": []})
    state = json.loads(state_path.read_text(encoding="utf-8"))
    assert state["phase"] == "run"
    assert state["complete"] is True
    assert state["nodes"]["n1"]["port"] == 5


def test_async_and_blocking_clients_over_a_live_server(tmp_path):
    async def main():
        server = DirectoryServer(["n1"],
                                 state_path=tmp_path / "state.json")
        port = await server.start()
        try:
            reply = await request_async(
                "127.0.0.1", port,
                {"op": "register", "node": "n1", "host": "127.0.0.1",
                 "port": 1234, "processes": ["p1"]})
            assert reply["phase"] == "run"

            # the blocking driver-side client, run off-loop
            client = DirectoryClient("127.0.0.1", port)
            loop = asyncio.get_running_loop()
            lookup = await loop.run_in_executor(None, client.lookup)
            assert lookup["complete"] is True
            status = await loop.run_in_executor(
                None, lambda: client.status("n1", {"ops": 7}))
            assert status["ok"] is True
            snapshot = await loop.run_in_executor(None, client.snapshot)
            assert snapshot["state"]["reports"]["n1"] == {"ops": 7}
            phase = await loop.run_in_executor(
                None, lambda: client.set_phase("stop"))
            assert phase["phase"] == "stop"
        finally:
            await server.stop()
    asyncio.run(main())


def test_shutdown_request_releases_serve_until_shutdown():
    async def main():
        server = DirectoryServer([])
        port = await server.start()
        serve = asyncio.create_task(server.serve_until_shutdown())
        reply = await request_async("127.0.0.1", port, {"op": "shutdown"})
        assert reply["ok"] is True
        await asyncio.wait_for(serve, timeout=5.0)
    asyncio.run(main())
