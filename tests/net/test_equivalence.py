"""Sim/TCP equivalence: the same protocol code, two transports.

The net-smoke cluster spec (``chain_smoke_spec(3)``) is deliberately the
same scenario as the model checker's ``chain3``: sites I/F/T, the causal
write chain ``g0:a -> g0:b -> g0:y`` plus the partial-group bait
``g1:p``.  Running it on the sim kernel and on real asyncio TCP must
agree on everything causality pins down:

* the **set** of (origin, key) pairs visible at each datacenter
  (completeness + partial replication), and
* the **order** of every causally related pair.

Raw per-DC sequences are *not* compared element-wise: ``g1:p`` and
``g0:y`` are concurrent (both depend only on ``g0:b``), so their
relative order at F legitimately differs between transports.

The sim side is additionally pinned to the pre-refactor trace digest —
the transport seam must not perturb the deterministic path by one bit.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.mc.scenario import build_scenario
from repro.net.spec import chain_dependencies, chain_smoke_spec

# trace digest of the chain3 scenario as of the pre-transport seed; any
# drift here means the refactor changed the deterministic sim path
CHAIN3_DIGEST = \
    "e9807032bc72324a6c310699ed04e8104a8d1544f3601a17497d22e783d697a8"


def _sim_sequences(scenario):
    """Per-DC first-visibility (origin, key) order from the sim log."""
    sequences = {}
    for dc in scenario.datacenters:
        positions = scenario.log.visibility_positions(dc)
        ordered = sorted(positions, key=positions.get)
        sequences[dc] = [
            (scenario.log.updates[version].origin,
             scenario.log.updates[version].key)
            for version in ordered]
    return sequences


def _assert_causal_edges_respected(spec, sequences):
    """Every causal (dep, key) edge is ordered dep-first at every DC
    replicating both keys (where both are present)."""
    origin_of = {key: origin for origin, key in spec.scripted_updates()}
    replication = spec.replication()
    for dep_key, key in chain_dependencies(spec):
        both = (set(replication.replicas(dep_key))
                & set(replication.replicas(key)))
        for dc in sorted(both):
            sequence = sequences[dc]
            dep_pair = (origin_of[dep_key], dep_key)
            pair = (origin_of[key], key)
            assert dep_pair in sequence and pair in sequence, \
                f"{dc} is missing {dep_pair} or {pair}"
            assert sequence.index(dep_pair) < sequence.index(pair), \
                f"causal inversion at {dc}: {key} before {dep_key}"


def _expected_sets(spec):
    replication = spec.replication()
    expected = {site: set() for site in spec.sites}
    for origin, key in spec.scripted_updates():
        for site in replication.replicas(key):
            expected[site].add((origin, key))
    return expected


def test_sim_transport_digest_is_bit_identical_to_seed():
    scenario = build_scenario("chain3")
    scenario.run()
    assert scenario.digest() == CHAIN3_DIGEST


def test_sim_sequences_satisfy_the_net_smoke_contract():
    """The checker's contract, applied to the sim transport."""
    scenario = build_scenario("chain3")
    scenario.run()
    sequences = _sim_sequences(scenario)
    spec = chain_smoke_spec(3)
    assert {dc: set(seq) for dc, seq in sequences.items()} \
        == _expected_sets(spec)
    _assert_causal_edges_respected(spec, sequences)


@pytest.mark.slow
def test_tcp_transport_agrees_with_the_sim_transport(tmp_path):
    """Boot the real 3-DC TCP cluster and compare against the sim run."""
    scenario = build_scenario("chain3")
    scenario.run()
    assert scenario.digest() == CHAIN3_DIGEST
    sim_sequences = _sim_sequences(scenario)

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src_root)
    cluster_dir = tmp_path / "cluster"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.net", "run", "--dcs", "3",
         "--cluster-dir", str(cluster_dir), "--timeout", "60", "--json"],
        env=env, capture_output=True, text=True, timeout=150)
    outcome = json.loads(
        (cluster_dir / "outcome.json").read_text(encoding="utf-8"))
    assert proc.returncode == 0, (
        f"net run failed (exit {proc.returncode}):\n{proc.stdout}\n"
        f"{proc.stderr}\noutcome: {json.dumps(outcome, indent=2)}")
    assert outcome["check"]["ok"] is True
    assert not outcome["timed_out"]
    assert all(code == 0 for code in outcome["node_exits"].values())

    tcp_sequences = {
        dc: [tuple(pair) for pair in sequence]
        for dc, sequence in outcome["check"]["sequences"].items()}

    # the two transports see the same worlds...
    spec = chain_smoke_spec(3)
    assert set(tcp_sequences) == set(sim_sequences)
    for dc in sim_sequences:
        assert set(tcp_sequences[dc]) == set(sim_sequences[dc]), \
            f"visible sets diverge at {dc}"
    # ...and both respect every causal edge; concurrent pairs may differ
    _assert_causal_edges_respected(spec, sim_sequences)
    _assert_causal_edges_respected(spec, tcp_sequences)
