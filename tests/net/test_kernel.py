"""RealtimeKernel: the sim kernel's actor-facing surface on wall time."""

import asyncio

import pytest

from repro.net.kernel import RealtimeKernel


def test_now_is_monotonic_and_ms_scaled():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        first = kernel.now
        await asyncio.sleep(0.02)
        second = kernel.now
        assert second > first
        # 20 ms of real sleep advances kernel time by roughly 20 ms units
        assert 5.0 < second - first < 5000.0
    asyncio.run(main())


def test_schedule_fires_in_delay_order():
    order = []

    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        done = asyncio.Event()
        kernel.schedule(30.0, lambda: (order.append("late"), done.set()))
        kernel.schedule(5.0, lambda: order.append("early"))
        kernel.schedule(0.0, lambda: order.append("immediate"))
        await asyncio.wait_for(done.wait(), timeout=5.0)
    asyncio.run(main())
    assert order == ["immediate", "early", "late"]


def test_negative_delay_raises_like_the_sim_kernel():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        with pytest.raises(ValueError):
            kernel.schedule(-1.0, lambda: None)
    asyncio.run(main())


def test_schedule_at_clamps_past_deadlines():
    fired = []

    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        done = asyncio.Event()
        kernel.schedule_at(kernel.now - 1000.0,
                           lambda: (fired.append(True), done.set()))
        await asyncio.wait_for(done.wait(), timeout=5.0)
    asyncio.run(main())
    assert fired == [True]


def test_cancelled_timer_never_fires():
    fired = []

    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        timer = kernel.schedule(5.0, lambda: fired.append(True))
        timer.cancel()
        assert timer.cancelled
        await asyncio.sleep(0.03)
    asyncio.run(main())
    assert fired == []


def test_counters_mirror_the_sim_surface():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        assert kernel.last_seq == -1
        done = asyncio.Event()
        kernel.schedule(0.0, done.set)
        kernel.schedule(0.0, lambda: None)
        assert kernel.last_seq == 1
        await asyncio.wait_for(done.wait(), timeout=5.0)
        assert kernel.events_executed >= 1
    asyncio.run(main())
