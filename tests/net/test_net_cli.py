"""The ``saturn-repro net`` driver paths that need no subprocesses."""

import json

from repro.net.check import check_cluster
from repro.net.cli import _python_env, _expected_by_node, _summarize, main
from repro.net.spec import chain_smoke_spec


def test_spec_subcommand_prints_the_cluster_spec(capsys):
    assert main(["spec", "--dcs", "4", "--poll-cap", "7"]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed == chain_smoke_spec(4, poll_cap=7).to_json()


def _write_conforming_cluster(cluster_dir, spec):
    cluster_dir.mkdir()
    spec.save(cluster_dir / "spec.json")
    replication = spec.replication()
    for site in spec.sites:
        node_dir = cluster_dir / f"dc-{site}"
        node_dir.mkdir()
        events = []
        for origin, key in spec.scripted_updates():
            if site in replication.replicas(key):
                events.append({
                    "event": "update" if site == origin else "visible",
                    "dc": site, "key": key, "origin": origin,
                    "ts": 1.0, "src": "s"})
        for client in spec.clients_of(site):
            for op in client["script"]:
                if op["op"] == "read":
                    events.append({
                        "event": "read", "client": client["id"],
                        "dc": site, "key": op["key"],
                        "version": [1.0, "s"]})
        (node_dir / "visibility.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events),
            encoding="utf-8")


def test_check_subcommand_over_a_conforming_cluster(tmp_path, capsys):
    cluster = tmp_path / "cluster"
    _write_conforming_cluster(cluster, chain_smoke_spec(3))
    assert main(["check", "--cluster-dir", str(cluster)]) == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True


def test_check_subcommand_flags_a_violating_cluster(tmp_path, capsys):
    cluster = tmp_path / "cluster"
    _write_conforming_cluster(cluster, chain_smoke_spec(3))
    # erase one replica's log: completeness must fail
    (cluster / "dc-T" / "visibility.jsonl").write_text("", encoding="utf-8")
    assert main(["check", "--cluster-dir", str(cluster)]) == 1
    assert json.loads(capsys.readouterr().out)["ok"] is False


def test_expected_by_node_respects_partial_replication():
    expected = _expected_by_node(chain_smoke_spec(3))
    assert ("I", "g1:p") in expected["dc-F"]
    assert ("I", "g1:p") not in expected["dc-T"]
    assert ("F", "g0:y") in expected["dc-T"]


def test_python_env_prepends_the_src_root():
    env = _python_env()
    first = env["PYTHONPATH"].split(":")[0]
    assert (first + "/repro/net/cli.py").replace("//", "/")


def test_summarize_reports_ok_and_violations(tmp_path, capsys):
    cluster = tmp_path / "cluster"
    _write_conforming_cluster(cluster, chain_smoke_spec(3))
    ok = check_cluster(cluster).to_json()
    _summarize({"cluster_dir": str(cluster), "check": ok,
                "node_exits": {"dc-I": 0}, "timed_out": False})
    out = capsys.readouterr().out
    assert "net: OK" in out and "causal" in out

    bad = dict(ok)
    bad["ok"] = False
    bad["problems"] = ["completeness: g0:y never visible at T"]
    _summarize({"cluster_dir": str(cluster), "check": bad,
                "node_exits": {"dc-I": 3}, "timed_out": True,
                "crashed": ["dc-I"]})
    out = capsys.readouterr().out
    assert "TIMEOUT" in out and "VIOLATION" in out and "unclean" in out
