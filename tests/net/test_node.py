"""Node runtime pieces that need no sockets: recorder, scripts, view."""

import asyncio
import json

import pytest

from repro.core.label import Label, LabelType
from repro.net.kernel import RealtimeKernel
from repro.net.node import NetRecorder, NodeRuntime, StaticSaturnView, \
    script_generator
from repro.net.spec import chain_smoke_spec, write_cluster
from repro.workloads.ops import ReadOp, UpdateOp


def _label(key, ts=1.0, src="gear:I:0", origin="I"):
    return Label(type=LabelType.UPDATE, src=src, ts=ts, target=key,
                 origin_dc=origin)


class FakeClient:
    """Just enough of ClientProcess for the script generator."""

    def __init__(self):
        self._observed_max_per_key = {}


def _drain(generator, client, limit=50):
    ops = []
    for _ in range(limit):
        op = generator(client)
        if op is None:
            break
        ops.append(op)
    return ops


def test_static_view_answers_the_ingress_query():
    view = StaticSaturnView(chain_smoke_spec(3))
    assert view.ingress_process("I", 0) == "ser:e0:sI"
    assert view.ingress_process("T", 0) == "ser:e0:sT"
    assert view.ingress_process("nowhere", 0) is None


def test_script_generator_plays_updates_and_reads_once():
    generator = script_generator([
        {"op": "update", "key": "g0:a", "size": 3},
        {"op": "read", "key": "g0:a"},
    ])
    client = FakeClient()
    ops = _drain(generator, client)
    assert ops == [UpdateOp("g0:a", 3), ReadOp("g0:a")]
    assert generator(client) is None  # stays exhausted


def test_script_generator_polls_until_a_version_is_observed():
    generator = script_generator([
        {"op": "poll", "key": "g0:b", "cap": 10},
        {"op": "update", "key": "g0:y"},
    ])
    client = FakeClient()
    assert generator(client) == ReadOp("g0:b")
    assert generator(client) == ReadOp("g0:b")
    client._observed_max_per_key["g0:b"] = (1.0, "gear:I:0")
    assert generator(client) == UpdateOp("g0:y", 2)
    assert generator(client) is None


def test_script_generator_poll_cap_bounds_a_broken_cluster():
    generator = script_generator([{"op": "poll", "key": "g0:b", "cap": 4}])
    client = FakeClient()  # the version never arrives
    assert _drain(generator, client) == [ReadOp("g0:b")] * 4


def test_script_generator_rejects_unknown_ops():
    generator = script_generator([{"op": "frobnicate", "key": "k"}])
    with pytest.raises(ValueError):
        generator(FakeClient())


def test_recorder_writes_canonical_jsonl_and_tracks_first_visibility(
        tmp_path):
    path = tmp_path / "visibility.jsonl"

    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        recorder = NetRecorder(
            open(path, "a", encoding="utf-8", buffering=1), kernel)
        recorder.record_update(_label("g0:a"), "I", created_at=1.0)
        recorder.record_visible(_label("g0:a"), "F", at=2.0)
        recorder.record_visible(_label("g0:a"), "F", at=3.0)  # duplicate
        recorder.record_read("reader", "F", "g0:a",
                             returned=(1.0, "gear:I:0"),
                             observed_max=None)
        recorder.record_read("reader", "F", "g0:b", returned=None,
                             observed_max=None)
        recorder.record_update_deps((2.0, "g"), {(1.0, "g")})
        recorder.record_visibility("I", "F", 12.5)
        recorder.record_op("read", 0.5, at=9.0)
        recorder.close()

    asyncio.run(main())
    events = [json.loads(line)
              for line in path.read_text(encoding="utf-8").splitlines()]
    kinds = [event["event"] for event in events]
    assert kinds == ["update", "visible", "visible", "read", "read",
                     "deps", "latency", "op"]
    assert events[0]["origin"] == "I" and events[0]["key"] == "g0:a"
    assert events[1]["dc"] == "F"
    assert events[3]["version"] == [1.0, "gear:I:0"]
    assert events[4]["version"] is None
    assert all("at" in event for event in events)


def test_recorder_visible_pairs_are_first_occurrence_order(tmp_path):
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        recorder = NetRecorder(
            open(tmp_path / "v.jsonl", "a", encoding="utf-8", buffering=1),
            kernel)
        recorder.record_update(_label("g0:a"), "I", created_at=1.0)
        recorder.record_visible(_label("g0:b", ts=2.0), "I", at=2.0)
        recorder.record_visible(_label("g0:a", ts=3.0), "I", at=3.0)
        assert recorder.visible_pairs == [("I", "g0:a"), ("I", "g0:b")]
        recorder.close()

    asyncio.run(main())


def test_node_runtime_loads_its_config_and_spec(tmp_path):
    spec = chain_smoke_spec(3)
    node_dirs = write_cluster(spec, tmp_path, "127.0.0.1", 4321,
                              deadline_s=17.0)
    runtime = NodeRuntime(node_dirs["dc-F"])
    assert runtime.node_name == "dc-F"
    assert runtime.role == "dc" and runtime.target == "F"
    assert runtime.processes == ["dc:F", "client:relay-F"]
    assert runtime.directory == ("127.0.0.1", 4321)
    assert runtime.deadline_s == 17.0
    assert runtime.spec == spec

    serializer = NodeRuntime(node_dirs["ser-sT"])
    assert serializer.role == "serializer"
    assert serializer.processes == ["ser:e0:sT"]
