"""NetSanitizer: stall watchdog, reentrancy assertion, task-leak check,
and the kernel/transport wiring that feeds them."""

import asyncio
import json
import time

from repro.datacenter.messages import Ping, Pong
from repro.net.kernel import RealtimeKernel
from repro.net.sanitizers import NetSanitizer
from repro.net.tcp import TcpTransport


class Recorder:
    def __init__(self, name):
        self.name = name
        self.got = []

    def deliver(self, src, message):
        self.got.append((src, message))


class ReentrantSender:
    """Pathological actor: sends from inside its deliver handler (legal),
    used to prove legal patterns stay clean."""

    def __init__(self, name, transport, target):
        self.name = name
        self._transport = transport
        self._target = target
        self.got = []

    def deliver(self, src, message):
        self.got.append((src, message))
        if isinstance(message, Ping):
            self._transport.send(self.name, self._target, Pong(seq=0))


async def _drain_until(predicate, timeout=5.0):
    async def wait():
        while not predicate():
            await asyncio.sleep(0.005)
    await asyncio.wait_for(wait(), timeout)


# -- stall watchdog ----------------------------------------------------------

def test_slow_kernel_callback_is_recorded_as_a_stall():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        san = NetSanitizer(stall_ms=50.0)
        kernel.sanitizer = san

        def block():
            time.sleep(0.12)  # deliberately stalls the loop

        kernel.schedule(0.0, block)
        await asyncio.sleep(0.3)
        assert not san.ok
        (stall,) = san.stalls
        assert stall["kind"] == "callback"
        assert stall["held_ms"] >= 50.0
        assert "block" in stall["callback"]
        assert san.callbacks_timed == 1
    asyncio.run(main())


def test_fast_callbacks_leave_the_sanitizer_clean():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        san = NetSanitizer(stall_ms=50.0)
        kernel.sanitizer = san
        hits = []
        for _ in range(5):
            kernel.schedule(0.0, lambda: hits.append(1))
        await asyncio.sleep(0.1)
        assert len(hits) == 5 and san.ok
        assert san.callbacks_timed == 5
    asyncio.run(main())


def test_probe_task_detects_loop_lag_from_non_kernel_code():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        san = NetSanitizer(stall_ms=50.0)
        san.start(kernel)
        await asyncio.sleep(0.1)   # give the probe a beat to be sleeping
        time.sleep(0.2)            # stall the loop outside any callback
        await asyncio.sleep(0.1)
        await san.stop()
        assert any(s["kind"] == "loop-lag" for s in san.stalls)
    asyncio.run(main())


def test_probe_stop_is_idempotent():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        san = NetSanitizer()
        san.start(kernel)
        await san.stop()
        await san.stop()  # second stop is a no-op, not an error
    asyncio.run(main())


# -- reentrancy --------------------------------------------------------------

def test_direct_delivery_inside_send_is_recorded():
    san = NetSanitizer()
    sink = Recorder("actor:r")
    san.enter_send()
    san.deliver(sink, "actor:s", Pong(seq=9))  # delivering inside send()
    san.exit_send()
    assert sink.got == [("actor:s", Pong(seq=9))]  # behaviour unchanged
    (violation,) = san.reentrancy
    assert violation["process"] == "actor:r"
    assert violation["send_depth"] == 1


def test_nested_delivery_is_recorded():
    san = NetSanitizer()
    outer = Recorder("actor:outer")
    inner = Recorder("actor:inner")
    outer.deliver = lambda src, msg: san.deliver(inner, "actor:outer", msg)
    san.deliver(outer, "actor:s", Pong(seq=1))
    (violation,) = san.reentrancy
    assert violation["deliver_depth"] == 1


def test_transport_delivery_through_the_kernel_stays_clean():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        san = NetSanitizer(stall_ms=500.0)
        kernel.sanitizer = san
        a = TcpTransport(kernel, "node-a")
        b = TcpTransport(kernel, "node-b")
        a.sanitizer = san
        b.sanitizer = san
        addresses = {"node-a": await a.start(), "node-b": await b.start()}
        routes = {"actor:a": "node-a", "actor:b": "node-b"}
        a.set_routes(routes, addresses)
        b.set_routes(routes, addresses)
        try:
            # an actor that sends from inside deliver: legal, because the
            # transport schedules deliveries instead of calling through
            echo = ReentrantSender("actor:b", b, "actor:a")
            sink = Recorder("actor:a")
            b.register(echo)
            a.register(sink)
            a.send("actor:a", "actor:b", Ping(seq=1, origin="a"))
            await _drain_until(lambda: len(sink.got) == 1)
            assert san.reentrancy == []
            assert san.deliveries_checked >= 2
        finally:
            await a.stop()
            await b.stop()
    asyncio.run(main())


# -- task leaks --------------------------------------------------------------

def test_straggler_task_is_reported_as_a_leak():
    async def main():
        san = NetSanitizer()

        async def forever():
            await asyncio.sleep(3600)

        task = asyncio.get_running_loop().create_task(
            forever(), name="straggler")
        await asyncio.sleep(0)
        san.check_task_leaks()
        assert "straggler" in san.task_leaks
        assert not san.ok
        task.cancel()
    asyncio.run(main())


def test_clean_shutdown_reports_no_leaks():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        san = NetSanitizer()
        san.start(kernel)
        transport = TcpTransport(kernel, "node-a")
        await transport.start()
        await san.stop()
        await transport.stop()
        san.check_task_leaks()
        assert san.task_leaks == [], san.task_leaks
    asyncio.run(main())


# -- report ------------------------------------------------------------------

def test_report_roundtrips_through_json(tmp_path):
    san = NetSanitizer(stall_ms=123.0)
    san.enter_send()
    san.deliver(Recorder("actor:x"), "actor:y", Pong(seq=2))
    san.exit_send()
    path = tmp_path / "sanitizers.json"
    san.write(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["ok"] is False
    assert payload["stall_ms"] == 123.0
    assert len(payload["reentrancy"]) == 1
    assert payload["stalls"] == [] and payload["task_leaks"] == []
