"""ClusterSpec: chain construction, JSON round trip, derived views."""

import json

import pytest

from repro.net.spec import (ClusterSpec, chain_dependencies,
                            chain_smoke_spec, write_cluster)


def test_chain3_reuses_the_mc_scenario_shape():
    spec = chain_smoke_spec(3)
    assert spec.sites == ["I", "F", "T"]
    assert spec.groups == {"g0": ["I", "F", "T"], "g1": ["I", "F"]}
    assert spec.edges == [("sI", "sF"), ("sF", "sT")]
    assert spec.attachments == {"I": "sI", "F": "sF", "T": "sT"}
    assert spec.scripted_updates() == [
        ("I", "g0:a"), ("I", "g0:b"), ("I", "g1:p"), ("F", "g0:y")]


def test_chain_dependencies_link_sessions_and_polls():
    edges = chain_dependencies(chain_smoke_spec(3))
    assert ("g0:a", "g0:b") in edges       # writer session order
    assert ("g0:b", "g1:p") in edges
    assert ("g0:b", "g0:y") in edges       # relay poll-then-update
    assert ("g0:a", "g0:y") not in edges   # only direct edges


def test_larger_chains_extend_site_and_key_names():
    spec = chain_smoke_spec(5)
    assert spec.sites == ["I", "F", "T", "D3", "D4"]
    updates = [key for _, key in spec.scripted_updates()]
    assert updates == ["g0:a", "g0:b", "g1:p", "g0:y", "g0:y2", "g0:y3"]
    # still a chain: each relay waits for its predecessor
    edges = chain_dependencies(spec)
    assert ("g0:y", "g0:y2") in edges and ("g0:y2", "g0:y3") in edges


def test_too_small_chain_is_rejected():
    with pytest.raises(ValueError):
        chain_smoke_spec(1)


def test_json_round_trip_is_lossless():
    spec = chain_smoke_spec(4)
    clone = ClusterSpec.from_json(
        json.loads(json.dumps(spec.to_json())))
    assert clone == spec


def test_derived_topology_and_replication_views():
    spec = chain_smoke_spec(3)
    topology = spec.topology()
    assert topology.attachments["T"] == "sT"
    replication = spec.replication()
    assert replication.replicas("g1:p") == frozenset({"I", "F"})
    assert replication.replicas("g0:a") == frozenset({"I", "F", "T"})


def test_nodes_roster_covers_every_site_and_serializer():
    roster = chain_smoke_spec(3).nodes()
    assert sorted(roster) == ["dc-F", "dc-I", "dc-T",
                              "ser-sF", "ser-sI", "ser-sT"]
    assert roster["dc-I"]["processes"] == ["dc:I", "client:writer-I"]
    assert roster["ser-sI"]["processes"] == ["ser:e0:sI"]


def test_write_cluster_lays_out_per_node_config_dirs(tmp_path):
    spec = chain_smoke_spec(3)
    node_dirs = write_cluster(spec, tmp_path, "127.0.0.1", 4000,
                              deadline_s=30.0)
    assert sorted(node_dirs) == sorted(spec.nodes())
    reloaded = ClusterSpec.load(tmp_path / "spec.json")
    assert reloaded == spec
    config = json.loads(
        (node_dirs["dc-T"] / "node.json").read_text(encoding="utf-8"))
    assert config["role"] == "dc" and config["target"] == "T"
    assert config["directory"] == ["127.0.0.1", 4000]
    assert config["deadline_s"] == 30.0
    # the spec pointer resolves from inside the node dir
    assert (node_dirs["dc-T"] / config["spec"]).resolve().exists()
