"""TcpTransport: framing, FIFO, boot-race buffering, local fast path.

Two transports share one event loop (two "nodes" in one test process) —
the frames still travel through real localhost sockets.
"""

import asyncio
import itertools
import logging

import pytest

from repro.datacenter.messages import Ping, Pong
from repro.net import tcp
from repro.net.kernel import RealtimeKernel
from repro.net.tcp import TcpTransport, _backoff_schedule


class Recorder:
    """Minimal actor: records deliveries in order."""

    def __init__(self, name):
        self.name = name
        self.got = []

    def deliver(self, src, message):
        self.got.append((src, message))


async def _pair():
    kernel = RealtimeKernel(asyncio.get_running_loop())
    a = TcpTransport(kernel, "node-a")
    b = TcpTransport(kernel, "node-b")
    addresses = {"node-a": await a.start(), "node-b": await b.start()}
    routes = {"actor:a": "node-a", "actor:b": "node-b"}
    a.set_routes(routes, addresses)
    b.set_routes(routes, addresses)
    return kernel, a, b


async def _drain_until(predicate, timeout=5.0):
    async def wait():
        while not predicate():
            await asyncio.sleep(0.005)
    await asyncio.wait_for(wait(), timeout)


def test_cross_node_fifo_order():
    async def main():
        _, a, b = await _pair()
        try:
            sink = Recorder("actor:b")
            b.register(sink)
            for seq in range(50):
                a.send("actor:a", "actor:b", Ping(seq=seq, origin="a"))
            await _drain_until(lambda: len(sink.got) == 50)
            assert [m.seq for _, m in sink.got] == list(range(50))
            assert all(src == "actor:a" for src, _ in sink.got)
            assert a.messages_sent == 50 and a.bytes_sent > 0
            assert b.frames_received == 50
        finally:
            await a.stop()
            await b.stop()
    asyncio.run(main())


def test_inbound_frames_buffer_until_the_actor_registers():
    async def main():
        _, a, b = await _pair()
        try:
            for seq in range(3):
                a.send("actor:a", "actor:b", Ping(seq=seq, origin="a"))
            await _drain_until(lambda: b.frames_received == 3)
            late = Recorder("actor:b")
            b.register(late)  # boot race resolved: pending frames flush
            await _drain_until(lambda: len(late.got) == 3)
            assert [m.seq for _, m in late.got] == [0, 1, 2]
        finally:
            await a.stop()
            await b.stop()
    asyncio.run(main())


def test_local_delivery_is_asynchronous_never_reentrant():
    async def main():
        _, a, b = await _pair()
        try:
            local = Recorder("actor:a")
            a.register(local)
            a.send("actor:x", "actor:a", Pong(seq=1))
            # same discipline as the sim Network: nothing delivered
            # inside the send() stack
            assert local.got == []
            await _drain_until(lambda: len(local.got) == 1)
            assert local.got == [("actor:x", Pong(seq=1))]
        finally:
            await a.stop()
            await b.stop()
    asyncio.run(main())


def test_duplicate_register_and_unknown_destination():
    async def main():
        _, a, b = await _pair()
        try:
            a.register(Recorder("actor:a"))
            with pytest.raises(ValueError):
                a.register(Recorder("actor:a"))
            with pytest.raises(KeyError):
                a.send("actor:a", "actor:nowhere", Pong(seq=1))
        finally:
            await a.stop()
            await b.stop()
    asyncio.run(main())


def test_backoff_schedule_doubles_up_to_the_cap():
    delays = list(itertools.islice(_backoff_schedule(), 8))
    assert delays == [0.05, 0.1, 0.2, 0.4, 0.5, 0.5, 0.5, 0.5]


def test_unreachable_peer_logs_and_counts_an_error(monkeypatch, caplog):
    # shrink the schedule so the retry loop exhausts in milliseconds
    monkeypatch.setattr(tcp, "_CONNECT_ATTEMPTS", 6)
    monkeypatch.setattr(tcp, "_CONNECT_RETRY_BASE_S", 0.001)
    monkeypatch.setattr(tcp, "_CONNECT_RETRY_CAP_S", 0.002)

    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        a = TcpTransport(kernel, "node-a")
        await a.start()
        # an address nobody listens on: bind-then-close to claim a port
        server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        dead_port = server.sockets[0].getsockname()[1]
        server.close()
        await server.wait_closed()
        a.set_routes({"actor:gone": "node-gone"},
                     {"node-a": (a.host, a.port),
                      "node-gone": ("127.0.0.1", dead_port)})
        try:
            with caplog.at_level(logging.WARNING, logger="repro.net.tcp"):
                a.send("actor:a", "actor:gone", Pong(seq=1))
                await _drain_until(lambda: a.peer_errors == 1)
            assert any("still unreachable" in r.getMessage()
                       for r in caplog.records)
            assert any("never accepted a connection" in r.getMessage()
                       for r in caplog.records)
        finally:
            await a.stop()
    asyncio.run(main())


def test_place_records_site_for_parity_with_sim_network():
    async def main():
        _, a, b = await _pair()
        try:
            a.place("actor:a", "I")
            assert a._sites["actor:a"] == "I"
        finally:
            await a.stop()
            await b.stop()
    asyncio.run(main())
