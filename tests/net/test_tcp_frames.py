"""Frame-decoding edge cases in ``TcpTransport._serve_connection``: a raw
socket writes crafted byte sequences at the listener and the transport
must either deliver or drop the connection — never crash, never deliver
garbage, never double-count."""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter.messages import Ping
from repro.net import codec
from repro.net.kernel import RealtimeKernel
from repro.net.tcp import TcpTransport


class Recorder:
    def __init__(self, name):
        self.name = name
        self.got = []

    def deliver(self, src, message):
        self.got.append((src, message))


async def _transport():
    kernel = RealtimeKernel(asyncio.get_running_loop())
    transport = TcpTransport(kernel, "node-t")
    await transport.start()
    sink = Recorder("actor:t")
    transport.register(sink)
    return transport, sink


async def _write_raw(transport, payload, *, close=True):
    """Open a raw client connection and write *payload* byte-for-byte."""
    _, writer = await asyncio.open_connection(
        transport.host, transport.port)
    writer.write(payload)
    await writer.drain()
    if close:
        writer.close()
        await writer.wait_closed()
        return None
    return writer


async def _drain_until(predicate, timeout=5.0):
    async def wait():
        while not predicate():
            await asyncio.sleep(0.005)
    await asyncio.wait_for(wait(), timeout)


async def _settle():
    for _ in range(10):
        await asyncio.sleep(0.005)


def _frame(seq=1):
    return codec.encode_frame("actor:s", "actor:t",
                              Ping(seq=seq, origin="x"))


# -- hand-written edge cases -------------------------------------------------

def test_truncated_header_then_disconnect_is_harmless():
    async def main():
        transport, sink = await _transport()
        try:
            await _write_raw(transport, b"\x00\x00")  # 2 of 4 header bytes
            await _settle()
            assert sink.got == []
            assert transport.frames_received == 0
            assert transport.peer_errors == 0  # disconnect, not a protocol error
        finally:
            await transport.stop()
    asyncio.run(main())


def test_truncated_body_then_disconnect_is_harmless():
    async def main():
        transport, sink = await _transport()
        try:
            frame = _frame()
            await _write_raw(transport, frame[:-3])  # header + partial body
            await _settle()
            assert sink.got == []
            assert transport.frames_received == 0
            assert transport.peer_errors == 0
        finally:
            await transport.stop()
    asyncio.run(main())


def test_over_cap_length_drops_the_connection_as_a_codec_error():
    async def main():
        transport, sink = await _transport()
        try:
            huge = codec.FRAME_HEADER.pack(codec.MAX_FRAME_BYTES + 1)
            writer = await _write_raw(transport, huge, close=False)
            await _drain_until(lambda: transport.peer_errors == 1)
            assert sink.got == []
            # the transport, not the client, must have closed the socket
            reader, _ = await asyncio.open_connection(
                transport.host, transport.port)
            writer.close()
            assert transport.frames_received == 0
        finally:
            await transport.stop()
    asyncio.run(main())


def test_garbage_body_of_the_advertised_length_is_a_codec_error():
    async def main():
        transport, sink = await _transport()
        try:
            body = b"\xff" * 32  # not JSON at all
            await _write_raw(transport,
                             codec.FRAME_HEADER.pack(len(body)) + body)
            await _drain_until(lambda: transport.peer_errors == 1)
            assert sink.got == []
        finally:
            await transport.stop()
    asyncio.run(main())


def test_valid_frame_then_mid_frame_disconnect_keeps_the_first():
    async def main():
        transport, sink = await _transport()
        try:
            payload = _frame(seq=7) + _frame(seq=8)[:5]
            await _write_raw(transport, payload)
            await _drain_until(lambda: len(sink.got) == 1)
            src, message = sink.got[0]
            assert src == "actor:s" and message.seq == 7
            assert transport.frames_received == 1
            assert transport.peer_errors == 0
        finally:
            await transport.stop()
    asyncio.run(main())


def test_frames_split_across_arbitrary_writes_reassemble():
    async def main():
        transport, sink = await _transport()
        try:
            stream = b"".join(_frame(seq=i) for i in range(3))
            writer = await _write_raw(transport, stream[:1], close=False)
            for offset in range(1, len(stream), 7):
                writer.write(stream[offset:offset + 7])
                await writer.drain()
            await _drain_until(lambda: len(sink.got) == 3)
            assert [m.seq for _, m in sink.got] == [0, 1, 2]
            writer.close()
        finally:
            await transport.stop()
    asyncio.run(main())


# -- property: chunking never changes what is delivered ----------------------

@settings(max_examples=20, deadline=None)
@given(
    seqs=st.lists(st.integers(min_value=0, max_value=999),
                  min_size=1, max_size=5),
    cut=st.integers(min_value=1, max_value=64),
    truncate=st.integers(min_value=0, max_value=8),
)
def test_chunked_delivery_is_chunking_invariant(seqs, cut, truncate):
    async def main():
        transport, sink = await _transport()
        try:
            stream = b"".join(_frame(seq=s) for s in seqs)
            if truncate:  # optionally shear off a partial trailing frame
                stream += _frame(seq=0)[:truncate]
            writer = await _write_raw(transport, stream[:cut], close=False)
            for offset in range(cut, len(stream), cut):
                writer.write(stream[offset:offset + cut])
                await writer.drain()
            await _drain_until(lambda: len(sink.got) >= len(seqs))
            writer.close()
            await _settle()
            # exactly the complete frames, in order; the shear is invisible
            assert [m.seq for _, m in sink.got] == seqs
            assert transport.frames_received == len(seqs)
            assert transport.peer_errors == 0
        finally:
            await transport.stop()
    asyncio.run(main())
