"""Transport/Kernel protocol conformance: both implementations satisfy
the same structural interface, so protocol actors cannot tell them apart.
"""

import asyncio

from repro.net.kernel import RealtimeKernel
from repro.net.tcp import TcpTransport
from repro.net.transport import Kernel, Transport
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


def test_sim_network_satisfies_the_transport_protocol():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=1))
    assert isinstance(network, Transport)


def test_tcp_transport_satisfies_the_transport_protocol():
    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        transport = TcpTransport(kernel, "node-x")
        assert isinstance(transport, Transport)
    asyncio.run(main())


def test_both_kernels_satisfy_the_kernel_protocol():
    assert isinstance(Simulator(), Kernel)

    async def main():
        assert isinstance(
            RealtimeKernel(asyncio.get_running_loop()), Kernel)
    asyncio.run(main())


def test_kernels_share_the_scheduling_surface():
    """The exact attribute set actors touch exists on both kernels."""
    sim = Simulator()
    for attr in ("now", "schedule", "schedule_at", "last_seq"):
        assert hasattr(sim, attr)

    async def main():
        kernel = RealtimeKernel(asyncio.get_running_loop())
        for attr in ("now", "schedule", "schedule_at", "last_seq"):
            assert hasattr(kernel, attr)
        # and timer handles expose the same cancel surface
        timer = kernel.schedule(1000.0, lambda: None)
        event = sim.schedule(1000.0, lambda: None)
        for handle in (timer, event):
            handle.cancel()
            assert handle.cancelled
    asyncio.run(main())
