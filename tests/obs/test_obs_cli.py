"""CLI and harness-integration tests for repro.obs: the ``obs`` command
(both entry points), harness ``obs=True`` wiring, and the trace exports
grown onto the faults / model-checker CLIs."""

import json

from repro.obs.__main__ import main as obs_main


# ---------------------------------------------------------------------------
# python -m repro.obs / saturn-repro obs
# ---------------------------------------------------------------------------

def test_obs_cli_scenario_run_writes_all_exports(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace-chrome.json"
    summary_path = tmp_path / "summary.json"
    exit_code = obs_main(["--scenario", "chain3",
                          "--jsonl", str(jsonl),
                          "--chrome", str(chrome),
                          "--json", str(summary_path),
                          "--top", "2"])
    assert exit_code == 0
    printed = capsys.readouterr().out
    assert "visibility breakdown I -> T" in printed
    assert "slow label" in printed

    lines = [json.loads(line)
             for line in jsonl.read_text().strip().split("\n")]
    assert lines[0]["meta"] == {"source": "chain3"}
    assert any(line["kind"] == "chain" for line in lines)

    document = json.loads(chrome.read_text())
    assert document["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in document["traceEvents"])

    summary = json.loads(summary_path.read_text())
    assert summary["source"] == "chain3"
    assert summary["chains"] > 0
    pair = summary["pairs"]["I->T"]
    assert pair["labels"] > 0
    assert pair["max_sum_error"] <= 1e-6


def test_obs_cli_scenario_determinism_check(capsys):
    assert obs_main(["--scenario", "chain3", "--check-determinism"]) == 0
    assert "determinism: OK" in capsys.readouterr().out


def test_obs_cli_chaos_scenario_counts_incomplete_chains(capsys):
    # the crash scenario drains one label via the (ts, source) fallback —
    # no tree path exists for it, so it must count as incomplete, not fail
    assert obs_main(["--scenario", "serializer-crash",
                     "--pair", "I", "T"]) == 0
    assert "incomplete" in capsys.readouterr().out


def test_obs_cli_fig4_smoke_breakdown(tmp_path):
    """The acceptance scenario: the Fig. 4 M-configuration run attributes
    T->S visibility to individual tree hops whose sum reproduces the
    measured end-to-end latency."""
    summary_path = tmp_path / "fig4.json"
    exit_code = obs_main(["--scale", "smoke", "--pair", "T", "S",
                          "--json", str(summary_path)])
    assert exit_code == 0
    summary = json.loads(summary_path.read_text())
    assert summary["source"] == "fig4-mconf/smoke"
    pair = summary["pairs"]["T->S"]
    assert pair["labels"] > 0
    assert pair["max_sum_error"] <= 1e-6
    # the breakdown names real tree edges, not just endpoints
    segment_names = [entry["segment"] for entry in pair["segments"]]
    assert any(name.startswith("wire ser:") for name in segment_names)
    assert "proxy-wait S" in segment_names


def test_saturn_repro_forwards_obs(capsys):
    from repro.harness.cli import main as cli_main
    assert cli_main(["obs", "--scenario", "chain3"]) == 0
    assert "visibility breakdown" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# harness wiring: ClusterConfig(obs=True)
# ---------------------------------------------------------------------------

def test_run_once_obs_flag_builds_a_hub():
    from repro.harness.experiments import SMOKE, run_once
    from repro.workloads.synthetic import SyntheticWorkload

    result = run_once("saturn", SyntheticWorkload(), SMOKE, obs=True)
    hub = result.cluster.obs_hub
    assert hub is not None
    assert hub.tracer.num_chains() > 0
    # end-of-run kernel gauges were sampled
    kernel_now = hub.registry.gauge("kernel", "now")
    assert kernel_now.updates == 1
    assert kernel_now.value > 0
    assert hub.registry.gauge("network", "messages_sent").value > 0
    assert len(hub.digest()) == 64


def test_run_once_without_obs_has_no_hub():
    from repro.harness.experiments import SMOKE, run_once
    from repro.workloads.synthetic import SyntheticWorkload

    result = run_once("saturn", SyntheticWorkload(), SMOKE)
    assert result.cluster.obs_hub is None


# ---------------------------------------------------------------------------
# faults / mc CLI integration
# ---------------------------------------------------------------------------

def test_faults_cli_trace_out_and_obs_determinism(tmp_path):
    from repro.faults.__main__ import main as faults_main

    trace = tmp_path / "chaos-trace.jsonl"
    summary_path = tmp_path / "chaos.json"
    exit_code = faults_main(["--scenario", "serializer-crash",
                             "--check-determinism",
                             "--trace-out", str(trace),
                             "--json", str(summary_path)])
    assert exit_code == 0
    summary = json.loads(summary_path.read_text())
    assert summary["obs_deterministic"] is True
    assert len(summary["obs_digest"]) == 64
    header = json.loads(trace.read_text().split("\n", 1)[0])
    assert header["meta"] == {"scenario": "serializer-crash"}


def test_model_checker_instrument_hook():
    from repro.analysis.mc.checker import ModelChecker
    from repro.analysis.mc.strategies import FifoStrategy
    from repro.obs import attach_tracer

    hubs = []
    checker = ModelChecker("chain3")
    outcome = checker.run_once(
        FifoStrategy(),
        instrument=lambda scenario: hubs.append(attach_tracer(scenario)))
    assert outcome.violations == []
    assert len(hubs) == 1
    assert hubs[0].tracer.num_chains() > 0
