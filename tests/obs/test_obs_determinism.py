"""Golden-trace determinism: double runs export bit-identically, and
attaching the tracer never perturbs the execution it observes."""

from repro.analysis.mc.scenario import build_chain3, build_scenario
from repro.faults.scenarios import build_chaos_scenario
from repro.obs import attach_tracer


def _traced_run(build):
    scenario = build()
    hub = attach_tracer(scenario)
    scenario.run()
    return scenario, hub


def test_chain3_double_run_is_bit_identical():
    first_scenario, first = _traced_run(lambda: build_scenario("chain3"))
    second_scenario, second = _traced_run(lambda: build_scenario("chain3"))
    assert first.tracer.num_chains() > 0
    assert first.export_jsonl() == second.export_jsonl()
    assert first.digest() == second.digest()
    # the delivery-trace digest (the mc oracle view) agrees too
    assert first_scenario.digest() == second_scenario.digest()


def test_fault_scenario_double_run_is_bit_identical():
    build = lambda: build_chaos_scenario("serializer-crash")  # noqa: E731
    _, first = _traced_run(build)
    _, second = _traced_run(build)
    # the crash arc exercises park/replay annotations and ts-drain chains
    kinds = {a.kind for a in first.tracer.annotations}
    assert "failover" in kinds
    assert first.export_jsonl() == second.export_jsonl()
    assert first.digest() == second.digest()


def test_chrome_export_is_deterministic():
    _, first = _traced_run(lambda: build_scenario("chain3"))
    _, second = _traced_run(lambda: build_scenario("chain3"))
    assert first.export_chrome() == second.export_chrome()


def test_tracer_is_transparent_to_the_traced_execution():
    """Same seed, with and without obs: the HazardMonitor must record the
    identical delivery trace — observation cannot change the simulation."""
    untraced = build_chain3("plain", horizon=60.0)
    untraced.run()

    traced = build_chain3("plain", horizon=60.0)
    hub = attach_tracer(traced)
    traced.run()

    assert hub.tracer.num_chains() > 0
    assert traced.digest() == untraced.digest()
    assert traced.sim.events_executed == untraced.sim.events_executed
