"""Export-format tests: canonical JSONL, Chrome trace events, and the
committed golden trace that pins the ``saturn-obs/v1`` schema."""

import json
from pathlib import Path

from repro.core.label import Label, LabelType
from repro.obs import LabelTracer, MetricsRegistry, SCHEMA
from repro.obs.export import export_chrome, export_jsonl, trace_digest

GOLDEN = Path(__file__).parent / "golden" / "chain3_horizon40.jsonl"


def _traced() -> LabelTracer:
    registry = MetricsRegistry(window=50.0)
    tracer = LabelTracer(registry=registry)
    label = Label(LabelType.UPDATE, src="I/gear", ts=1.0, target="g0:a",
                  origin_dc="I")
    tracer.on_issue(label, 1.0, "I")
    tracer.on_flush(label, 2.0, "I")
    tracer.on_serializer_arrive(label, 2.25, "ser:e0:sI", "dc:I")
    tracer.on_serializer_forward(label, 2.25, "ser:e0:sI", "dc:F", 0.5)
    tracer.on_deliver(label, 3.0, "F", 0, "queued")
    tracer.on_visible(label, 3.5, "F", "saturn")
    tracer.annotate(4.0, "epoch-change", "manager", epoch=1)
    return tracer


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def test_jsonl_layout_and_schema():
    tracer = _traced()
    exported = export_jsonl(tracer, registry=tracer.registry,
                            meta={"source": "unit"})
    lines = [json.loads(line) for line in exported.strip().split("\n")]
    assert lines[0] == {"kind": "header", "schema": SCHEMA,
                        "meta": {"source": "unit"}}
    kinds = [line["kind"] for line in lines]
    assert kinds == ["header", "chain", "annotation", "metrics"]
    chain = lines[1]
    assert chain["label"] == {"ts": 1.0, "src": "I/gear"}
    assert [event["kind"] for event in chain["events"]] == [
        "issue", "flush", "ser-arrive", "ser-forward", "deliver", "visible"]
    assert lines[2]["annotation"] == "epoch-change"
    assert lines[2]["extra"] == {"epoch": 1}
    assert "sink/I/labels_issued" in lines[3]["metrics"]["counters"]


def test_jsonl_is_deterministic_and_meta_changes_digest():
    tracer = _traced()
    first = export_jsonl(tracer, registry=tracer.registry)
    second = export_jsonl(tracer, registry=tracer.registry)
    assert first == second
    assert trace_digest(first) == trace_digest(second)
    assert trace_digest(first) != trace_digest(
        export_jsonl(tracer, registry=tracer.registry, meta={"seed": 2}))


def test_jsonl_chains_sorted_by_label_key():
    tracer = LabelTracer()
    for ts, src in [(5.0, "b"), (5.0, "a"), (1.0, "z")]:
        tracer.on_issue(Label(LabelType.UPDATE, src=src, ts=ts,
                              target="k", origin_dc="I"), ts, "I")
    lines = [json.loads(line) for line in
             export_jsonl(tracer).strip().split("\n")]
    keys = [(line["label"]["ts"], line["label"]["src"])
            for line in lines if line["kind"] == "chain"]
    assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------

def test_chrome_export_structure():
    document = export_chrome(_traced())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]

    meta_rows = [e for e in events if e["ph"] == "M"]
    named = sorted(row["args"]["name"] for row in meta_rows)
    assert named == ["F", "I", "manager", "ser:e0:sI"]
    pids = {row["args"]["name"]: row["pid"] for row in meta_rows}
    assert sorted(pids.values()) == [1, 2, 3, 4]

    spans = [e for e in events if e["ph"] == "X"]
    root = next(e for e in spans if e["name"] == "label")
    # simulated ms become trace µs
    assert root["ts"] == 1.0 * 1000.0
    assert root["dur"] == (3.5 - 1.0) * 1000.0
    assert root["args"] == {"label_ts": 1.0, "label_src": "I/gear"}
    serializer = next(e for e in spans if e["name"] == "serializer")
    assert serializer["pid"] == pids["ser:e0:sI"]
    assert serializer["dur"] == 0.5 * 1000.0  # the committed dwell

    instants = [e for e in events if e["ph"] == "i"]
    assert [i["name"] for i in instants] == ["epoch-change"]
    assert instants[0]["pid"] == pids["manager"]
    assert json.dumps(document)  # serializable as-is


# ---------------------------------------------------------------------------
# golden trace: the schema contract
# ---------------------------------------------------------------------------

def test_golden_chain3_trace_is_reproduced_byte_for_byte():
    """Re-running the pinned chain3 deployment must reproduce the committed
    export exactly.  If this fails because the schema deliberately changed,
    regenerate the fixture (see its header) and bump SCHEMA."""
    from repro.analysis.mc.scenario import build_chain3
    from repro.obs import attach_tracer

    scenario = build_chain3("golden", horizon=40.0)
    hub = attach_tracer(scenario)
    scenario.run()
    exported = hub.export_jsonl(meta={"fixture": "chain3-golden",
                                      "horizon": 40.0})
    assert exported == GOLDEN.read_text()


def test_golden_fixture_parses_and_pins_schema():
    lines = [json.loads(line)
             for line in GOLDEN.read_text().strip().split("\n")]
    assert lines[0]["schema"] == SCHEMA
    assert sum(1 for line in lines if line["kind"] == "chain") == 17
    assert lines[-1]["kind"] == "metrics"
