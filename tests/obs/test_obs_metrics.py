"""Unit tests for the obs metrics registry plus the repro.metrics edge
cases the observability layer leans on (percentile interpolation, CDFs,
windowed visibility queries)."""

import pytest

from repro.metrics.stats import cdf_points, mean, percentile
from repro.metrics.visibility import VisibilityRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


# ---------------------------------------------------------------------------
# counters / gauges / histograms
# ---------------------------------------------------------------------------

def test_counter_accumulates_and_windows():
    counter = Counter(window=10.0)
    counter.inc(at=1.0)
    counter.inc(2.0, at=9.9)
    counter.inc(at=10.0)
    counter.inc(at=25.0)
    assert counter.value == 5.0
    assert counter.series() == [(0.0, 3.0), (10.0, 1.0), (20.0, 1.0)]
    assert counter.to_obj() == {"value": 5.0,
                                "series": [[0.0, 3.0], [10.0, 1.0],
                                           [20.0, 1.0]]}


def test_counter_without_window_has_no_series():
    counter = Counter()
    counter.inc(at=123.0)
    assert counter.series() == []
    assert counter.to_obj() == {"value": 1.0}


def test_gauge_last_write_wins():
    gauge = Gauge()
    gauge.set(5.0, at=1.0)
    gauge.set(3.0, at=2.0)
    assert gauge.to_obj() == {"value": 3.0, "at": 2.0, "updates": 2}


def test_histogram_window_query_is_half_open():
    histogram = Histogram()
    for at, value in [(0.0, 1.0), (5.0, 2.0), (10.0, 3.0), (15.0, 4.0)]:
        histogram.observe(value, at=at)
    assert histogram.values_in(5.0, 15.0) == [2.0, 3.0]
    assert histogram.values_in(5.0, 15.0001) == [2.0, 3.0, 4.0]
    assert histogram.values_in(20.0, 30.0) == []
    assert histogram.count == 4


def test_histogram_summary_percentiles():
    histogram = Histogram()
    for value in range(1, 11):
        histogram.observe(float(value), at=float(value))
    obj = histogram.to_obj()
    assert obj["count"] == 10
    assert obj["min"] == 1.0 and obj["max"] == 10.0
    assert obj["mean"] == mean([float(v) for v in range(1, 11)])
    assert obj["p50"] == pytest.approx(5.5)


def test_empty_histogram_summary_is_count_only():
    assert Histogram().to_obj() == {"count": 0}


def test_registry_get_or_create_and_sorted_export():
    registry = MetricsRegistry(window=50.0)
    assert registry.counter("a", "x") is registry.counter("a", "x")
    registry.counter("b", "y").inc(at=1.0)
    registry.gauge("a", "g").set(7.0, at=2.0)
    registry.histogram("c", "h").observe(1.5, at=3.0)
    exported = registry.to_dict()
    assert exported["window"] == 50.0
    assert list(exported["counters"]) == ["a/x", "b/y"]
    assert exported["gauges"]["a/g"]["value"] == 7.0
    assert exported["histograms"]["c/h"]["count"] == 1
    # counters inherit the registry window
    assert exported["counters"]["b/y"]["series"] == [[0.0, 1.0]]


# ---------------------------------------------------------------------------
# repro.metrics.stats edges
# ---------------------------------------------------------------------------

def test_cdf_points_empty_input():
    assert cdf_points([]) == []


def test_cdf_points_reach_one():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


def test_percentile_extremes_and_interpolation():
    samples = [10.0, 0.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0) == 0.0
    assert percentile(samples, 100) == 40.0
    assert percentile(samples, 50) == 20.0
    # rank 0.25 * 4 = 1 exactly; 37.5 lands between indices 1 and 2
    assert percentile(samples, 37.5) == pytest.approx(15.0)


def test_percentile_single_sample_is_constant():
    assert percentile([7.5], 0) == 7.5
    assert percentile([7.5], 63.0) == 7.5
    assert percentile([7.5], 100) == 7.5


def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


# ---------------------------------------------------------------------------
# VisibilityRecorder window queries around warmup
# ---------------------------------------------------------------------------

class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


def test_visibility_recorder_drops_warmup_and_windows():
    clock = _FakeClock()
    recorder = VisibilityRecorder(warmup_until=100.0)
    recorder.bind_clock(clock)

    clock.now = 99.9
    recorder.record_visibility("I", "T", 5.0)   # inside warmup: dropped
    clock.now = 100.0
    recorder.record_visibility("I", "T", 6.0)   # boundary: kept
    clock.now = 150.0
    recorder.record_visibility("I", "T", 7.0)
    recorder.record_visibility("F", "T", 9.0)

    assert recorder.count() == 3
    assert recorder.samples("I", "T") == [6.0, 7.0]
    # recorded-at windows are half-open [t0, t1)
    assert recorder.samples_in_window(100.0, 150.0) == [6.0]
    assert recorder.samples_in_window(100.0, 150.1, origin="I") == [6.0, 7.0]
    assert recorder.samples_in_window(0.0, 100.0) == []
    assert recorder.mean_in_window(100.0, 151.0, dest="T") == pytest.approx(
        (6.0 + 7.0 + 9.0) / 3)


def test_visibility_recorder_unbound_clock_keeps_samples_without_timeline():
    recorder = VisibilityRecorder(warmup_until=100.0)
    recorder.record_visibility("I", "T", 5.0)   # no clock: warmup unenforced
    assert recorder.samples() == [5.0]
    # the timeline needs a clock, so windowed queries see nothing
    assert recorder.samples_in_window(0.0, 1e9) == []
    assert recorder.mean_in_window(0.0, 1e9) == 0.0
