"""Property tests for the observability layer.

Under random scripted workloads *and* random bounded fault plans, every
traced run must satisfy the structural trace invariants:

* every label chain is well-formed (monotone time, flush after issue,
  delivery implies flush, saturn-visibility implies delivery, at most one
  visibility per replica) with well-formed nested spans;
* every reconstructed tree path is acyclic;
* per-label segment sums telescope to the measured end-to-end latency;
* the span-derived visibility samples equal — pair by pair, as multisets —
  what the harness's VisibilityRecorder measured on the same run.
"""

from collections import defaultdict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.mc.scenario import SITES, _scripted, build_chain3
from repro.core.service import SaturnService
from repro.faults.plan import FaultAction, FaultPlan
from repro.faults.scenarios import _BEACON_PERIOD, _chaos_specs, _DETECTOR
from repro.obs import attach_tracer, chain_problems
from repro.obs.report import label_breakdown
from repro.workloads.ops import ReadOp, UpdateOp

TREES = ("sI", "sF", "sT")
EDGES = (("sI", "sF"), ("sF", "sT"))
KEYS = ("g0:a", "g0:b", "g0:c", "g1:p")


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def workload_specs(draw):
    """1-3 scripted clients issuing random short update/read programs."""
    specs = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        site = draw(st.sampled_from(SITES))
        ops = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            key = draw(st.sampled_from(KEYS))
            if draw(st.booleans()):
                ops.append(UpdateOp(key, 2))
            else:
                ops.append(ReadOp(key))
        specs.append((f"rand-{index}", site, _scripted(ops)))
    return specs


@st.composite
def fault_plans(draw):
    """1-3 bounded fault events, each optionally paired with its repair
    (same shape as the chaos-suite safety property)."""
    actions = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(("crash", "isolate", "delay")))
        tree = draw(st.sampled_from(TREES))
        start = float(draw(st.integers(min_value=1, max_value=25)))
        repair_after = float(draw(st.integers(min_value=5, max_value=40)))
        repaired = draw(st.booleans())
        if kind == "crash":
            actions.append(FaultAction(kind="crash-serializer", at=start,
                                       args={"tree": tree, "epoch": 0}))
            if repaired:
                actions.append(FaultAction(
                    kind="restart-serializer", at=start + repair_after,
                    args={"tree": tree, "epoch": 0}))
        elif kind == "isolate":
            process = SaturnService.serializer_process_name(0, tree)
            actions.append(FaultAction(kind="isolate", at=start,
                                       args={"process": process}))
            if repaired:
                actions.append(FaultAction(kind="rejoin",
                                           at=start + repair_after,
                                           args={"process": process}))
        else:
            src, dst = draw(st.sampled_from(EDGES))
            extra = float(draw(st.integers(min_value=1, max_value=20)))
            actions.append(FaultAction(
                kind="delay-spike", at=start,
                args={"src": SaturnService.serializer_process_name(0, src),
                      "dst": SaturnService.serializer_process_name(0, dst),
                      "extra": extra}))
    return FaultPlan(name="random-faults", actions=tuple(actions))


# ---------------------------------------------------------------------------
# shared assertions
# ---------------------------------------------------------------------------

def _assert_trace_invariants(scenario, hub) -> None:
    tracer = hub.tracer
    for key, events in tracer.chains():
        assert chain_problems(key, events) == [], (key, events)

        issue = events[0] if events[0].kind == "issue" else None
        if issue is None or issue.extra.get("type") != "update":
            continue
        for visible in (e for e in events if e.kind == "visible"):
            broken_down = label_breakdown(events, issue.node, visible.node)
            if broken_down is None:
                continue  # replay / ts-drain: no tree path to attribute
            path = broken_down["path"]
            assert len(path) == len(set(path)), f"cyclic path {path}"
            assert broken_down["sum_error"] <= 1e-6, broken_down


def _assert_visibility_matches_recorder(scenario, hub) -> None:
    """Span-derived (origin, dest) latency multisets == recorder samples."""
    derived = defaultdict(list)
    for _, events in hub.tracer.chains():
        issue = events[0] if events[0].kind == "issue" else None
        if issue is None or issue.extra.get("type") != "update":
            continue
        for visible in (e for e in events if e.kind == "visible"):
            derived[(issue.node, visible.node)].append(visible.t - issue.t)

    recorder = next(iter(scenario.datacenters.values())).metrics.visibility
    for pair in set(derived) | set(recorder.pairs()):
        assert sorted(derived.get(pair, [])) == sorted(
            recorder.samples(*pair)), pair


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=workload_specs())
def test_random_workloads_produce_wellformed_consistent_traces(specs):
    scenario = build_chain3("random-workload", horizon=120.0, specs=specs)
    hub = attach_tracer(scenario)
    scenario.run()
    _assert_trace_invariants(scenario, hub)
    _assert_visibility_matches_recorder(scenario, hub)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=fault_plans())
def test_random_fault_plans_produce_wellformed_consistent_traces(plan):
    scenario = build_chain3(
        "random-faults", horizon=160.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
        auto_failover=True, fault_plan=plan, min_expected_updates=0)
    hub = attach_tracer(scenario)
    scenario.run()
    _assert_trace_invariants(scenario, hub)
    _assert_visibility_matches_recorder(scenario, hub)
