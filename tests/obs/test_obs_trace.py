"""Unit tests for the label tracer, span derivation, chain
well-formedness checks, and the per-edge latency breakdown."""

import pytest

from repro.core.label import Label, LabelType
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import format_breakdown, label_breakdown, pair_breakdown
from repro.obs.trace import (LabelTracer, TraceEvent, chain_problems,
                             derive_spans)


def _label(ts: float = 1.0, src: str = "I/gear",
           type_: LabelType = LabelType.UPDATE) -> Label:
    return Label(type_, src=src, ts=ts, target="g0:a", origin_dc="I")


def _trace_full_chain(tracer: LabelTracer, label: Label) -> None:
    """issue at I -> sI -> sF (artificial delay 2) -> deliver/visible at F."""
    tracer.on_issue(label, 1.0, "I")
    tracer.on_flush(label, 2.0, "I")
    tracer.on_serializer_arrive(label, 2.25, "ser:e0:sI", "dc:I")
    tracer.on_serializer_forward(label, 2.25, "ser:e0:sI", "ser:e0:sF", 2.0)
    tracer.on_serializer_arrive(label, 8.25, "ser:e0:sF", "ser:e0:sI")
    tracer.on_serializer_forward(label, 8.25, "ser:e0:sF", "dc:F", 0.0)
    tracer.on_deliver(label, 8.5, "F", 0, "queued")
    tracer.on_visible(label, 9.0, "F", "saturn")


# ---------------------------------------------------------------------------
# recording + registry coupling
# ---------------------------------------------------------------------------

def test_tracer_records_chain_in_order_and_feeds_registry():
    registry = MetricsRegistry()
    tracer = LabelTracer(registry=registry)
    label = _label()
    _trace_full_chain(tracer, label)

    events = tracer.events((label.ts, label.src))
    assert [e.kind for e in events] == [
        "issue", "flush", "ser-arrive", "ser-forward",
        "ser-arrive", "ser-forward", "deliver", "visible"]
    assert events[0].extra == {"type": "update", "target": "g0:a",
                               "origin": "I"}
    assert tracer.num_chains() == 1
    assert registry.counter("sink/I", "labels_issued").value == 1
    assert registry.counter("serializer/ser:e0:sI", "labels_in").value == 1
    assert registry.counter("serializer/ser:e0:sF", "labels_out").value == 1
    assert registry.counter("proxy/F", "delivered_queued").value == 1
    assert registry.counter("proxy/F", "visible_saturn").value == 1


def test_tracer_works_without_registry():
    tracer = LabelTracer()
    tracer.on_issue(_label(), 1.0, "I")
    assert tracer.num_chains() == 1


def test_annotations_and_event_counters():
    registry = MetricsRegistry()
    tracer = LabelTracer(registry=registry)
    tracer.annotate(5.0, "epoch-change", "manager", epoch=1, emergency=False)
    tracer.annotate(6.0, "sink-park", "I")
    assert [a.kind for a in tracer.annotations] == ["epoch-change",
                                                    "sink-park"]
    assert tracer.annotations[0].extra == {"epoch": 1, "emergency": False}
    assert registry.counter("events/manager", "epoch_change").value == 1
    assert registry.counter("events/I", "sink_park").value == 1


def test_chains_iterate_in_label_key_order():
    tracer = LabelTracer()
    tracer.on_issue(_label(ts=5.0, src="b"), 5.0, "I")
    tracer.on_issue(_label(ts=5.0, src="a"), 5.0, "I")
    tracer.on_issue(_label(ts=1.0, src="z"), 1.0, "I")
    assert [key for key, _ in tracer.chains()] == [
        (1.0, "z"), (5.0, "a"), (5.0, "b")]


# ---------------------------------------------------------------------------
# span derivation
# ---------------------------------------------------------------------------

def test_derive_spans_structure():
    tracer = LabelTracer()
    label = _label()
    _trace_full_chain(tracer, label)
    spans = {(s.name, s.node): s for s in tracer.spans((label.ts, label.src))}

    root = spans[("label", "I")]
    assert root.parent is None
    assert root.start == 1.0
    assert root.end == 9.0  # visibility at F is the last thing known

    sink = spans[("sink", "I")]
    assert (sink.start, sink.end, sink.parent) == (1.0, 2.0, "label")

    ser_i = spans[("serializer", "ser:e0:sI")]
    assert (ser_i.start, ser_i.end) == (2.25, 4.25)  # extended by dwell

    proxy = spans[("proxy", "F")]
    assert (proxy.start, proxy.end) == (8.5, 9.0)


def test_derive_spans_empty_chain():
    assert derive_spans([]) == []


def test_span_serialization():
    tracer = LabelTracer()
    label = _label()
    tracer.on_issue(label, 1.0, "I")
    (span,) = tracer.spans((label.ts, label.src))
    assert span.to_obj() == {"name": "label", "node": "I", "start": 1.0,
                             "end": 1.0, "parent": None}


# ---------------------------------------------------------------------------
# chain well-formedness
# ---------------------------------------------------------------------------

def test_chain_problems_accepts_full_chain():
    tracer = LabelTracer()
    label = _label()
    _trace_full_chain(tracer, label)
    key = (label.ts, label.src)
    assert chain_problems(key, tracer.events(key)) == []


@pytest.mark.parametrize("events,needle", [
    ([], "empty chain"),
    ([TraceEvent(2.0, "issue", "I"), TraceEvent(1.0, "flush", "I")],
     "time went backwards"),
    ([TraceEvent(1.0, "flush", "I")], "flush before issue"),
    ([TraceEvent(1.0, "issue", "I"),
      TraceEvent(2.0, "deliver", "F", {"disposition": "queued"})],
     "without a prior flush"),
    ([TraceEvent(1.0, "issue", "I"), TraceEvent(2.0, "flush", "I"),
      TraceEvent(3.0, "visible", "F", {"mode": "saturn"})],
     "without a delivery"),
    ([TraceEvent(1.0, "issue", "I"), TraceEvent(2.0, "flush", "I"),
      TraceEvent(3.0, "deliver", "F", {"disposition": "queued"}),
      TraceEvent(4.0, "visible", "F", {"mode": "saturn"}),
      TraceEvent(5.0, "visible", "F", {"mode": "saturn"})],
     "visible twice"),
])
def test_chain_problems_detects_defects(events, needle):
    problems = chain_problems((1.0, "I/gear"), events)
    assert any(needle in problem for problem in problems), problems


def test_chain_problems_allows_ts_drain_without_delivery():
    # degraded-mode visibility comes from the sink backlog, not the tree
    events = [TraceEvent(1.0, "issue", "I"), TraceEvent(2.0, "flush", "I"),
              TraceEvent(9.0, "visible", "F", {"mode": "ts-drain"})]
    assert chain_problems((1.0, "I/gear"), events) == []


# ---------------------------------------------------------------------------
# per-edge breakdown
# ---------------------------------------------------------------------------

def test_label_breakdown_telescopes_exactly():
    tracer = LabelTracer()
    label = _label()
    _trace_full_chain(tracer, label)
    events = tracer.events((label.ts, label.src))

    broken_down = label_breakdown(events, "I", "F")
    assert broken_down is not None
    assert broken_down["path"] == ["ser:e0:sI", "ser:e0:sF"]
    assert broken_down["end_to_end"] == pytest.approx(8.0)
    assert broken_down["sum_error"] == pytest.approx(0.0, abs=1e-12)
    segments = dict(broken_down["segments"])
    assert segments["sink-dwell I"] == pytest.approx(1.0)
    assert segments["wire I->ser:e0:sI"] == pytest.approx(0.25)
    assert segments["dwell ser:e0:sI"] == pytest.approx(2.0)
    assert segments["wire ser:e0:sI->ser:e0:sF"] == pytest.approx(4.0)
    assert segments["wire ser:e0:sF->dc:F"] == pytest.approx(0.25)
    assert segments["proxy-wait F"] == pytest.approx(0.5)


def test_label_breakdown_incomplete_chain_is_none():
    tracer = LabelTracer()
    label = _label()
    # ts-drain label: visible without ever crossing the tree
    tracer.on_issue(label, 1.0, "I")
    tracer.on_flush(label, 2.0, "I")
    tracer.on_visible(label, 9.0, "F", "ts-drain")
    events = tracer.events((label.ts, label.src))
    assert label_breakdown(events, "I", "F") is None


def test_pair_breakdown_aggregates_and_counts_incomplete():
    tracer = LabelTracer()
    complete = _label(ts=1.0, src="I/g0")
    _trace_full_chain(tracer, complete)
    drained = _label(ts=2.0, src="I/g1")
    tracer.on_issue(drained, 2.0, "I")
    tracer.on_flush(drained, 3.0, "I")
    tracer.on_deliver(drained, 8.0, "F", 0, "queued")
    tracer.on_visible(drained, 9.0, "F", "saturn")

    breakdown = pair_breakdown(tracer, "I", "F")
    assert len(breakdown["labels"]) == 1
    assert breakdown["incomplete"] == 1
    assert breakdown["end_to_end_mean"] == pytest.approx(8.0)
    assert breakdown["max_sum_error"] < 1e-9

    rendered = format_breakdown(breakdown)
    assert "1 complete, 1 incomplete" in rendered
    assert "sink-dwell I" in rendered
    assert "proxy-wait F" in rendered


def test_pair_breakdown_no_matching_labels():
    breakdown = pair_breakdown(LabelTracer(), "I", "F")
    assert breakdown["labels"] == []
    assert breakdown["end_to_end_mean"] == 0.0
    assert "0 complete" in format_breakdown(breakdown)
