"""The perf harness: benches produce sane numbers, the baseline schema
round-trips, and the regression verdict trips exactly when it should."""

import json

import pytest

from repro.perf import __main__ as perf_cli
from repro.perf.baseline import (SCHEMA_VERSION, build_result, compare,
                                 load_result, normalize, save_result)
from repro.perf.benches import TREE_SITES, bench_kernel, bench_tree
from repro.perf.measure import best_rate, calibrate


# -- measurement primitives --------------------------------------------------

def test_calibration_is_positive():
    assert calibrate(samples=1, ops=20_000) > 0


def test_best_rate_keeps_the_fastest_sample():
    samples = iter([(100, 1.0), (100, 0.5), (100, 2.0)])
    rate, work, elapsed = best_rate(lambda: next(samples), repeats=3)
    assert rate == pytest.approx(200.0)
    assert work == 100
    assert elapsed == pytest.approx(0.5)


# -- benches -----------------------------------------------------------------

def test_kernel_bench_executes_requested_events():
    result = bench_kernel(events=5_000, chains=10, repeats=1)
    assert result["higher_is_better"] is True
    assert result["raw"] > 0
    # every chain decrements the shared budget; total executed is events
    # plus the initial kick-offs that found the budget already drained
    assert result["meta"]["events"] >= 5_000


def test_tree_bench_delivers_every_interested_label():
    result = bench_tree(batches_per_dc=4, labels_per_batch=5, repeats=1)
    meta = result["meta"]
    expected = len(TREE_SITES) * 4 * 5 * (len(TREE_SITES) - 1)
    assert meta["expected"] == expected
    assert meta["labels_delivered"] == expected
    assert result["raw"] > 0


# -- baseline schema ---------------------------------------------------------

def _result(kernel_norm=2.0, figure_norm=10.0):
    return {
        "schema": SCHEMA_VERSION,
        "machine": {"calibration_ops_per_sec": 1.0},
        "metrics": {
            "kernel_events_per_sec": {
                "raw": kernel_norm, "normalized": kernel_norm,
                "unit": "events/s", "higher_is_better": True, "meta": {}},
            "figure_smoke_seconds": {
                "raw": figure_norm, "normalized": figure_norm,
                "unit": "s", "higher_is_better": False, "meta": {}},
        },
    }


def test_normalize_direction():
    assert normalize(100.0, True, 10.0) == pytest.approx(10.0)
    assert normalize(2.0, False, 10.0) == pytest.approx(20.0)


def test_build_result_normalizes_with_calibration():
    metrics = {"kernel_events_per_sec": {
        "raw": 500.0, "unit": "events/s", "higher_is_better": True}}
    document = build_result(metrics, calibration=100.0)
    assert document["schema"] == SCHEMA_VERSION
    entry = document["metrics"]["kernel_events_per_sec"]
    assert entry["normalized"] == pytest.approx(5.0)


def test_build_result_calibration_free_skips_normalization():
    """A simulated metric's normalized value IS its raw value: identical
    on any machine, so the committed baseline never drifts with host
    speed (the saturation bench relies on this)."""
    metrics = {
        "overload_saturation_ops_s": {
            "raw": 6000.0, "unit": "ops/s/dc", "higher_is_better": True,
            "calibration_free": True},
        "kernel_events_per_sec": {
            "raw": 500.0, "unit": "events/s", "higher_is_better": True},
    }
    document = build_result(metrics, calibration=100.0)
    saturation = document["metrics"]["overload_saturation_ops_s"]
    assert saturation["normalized"] == 6000.0
    assert saturation["calibration_free"] is True
    # ordinary metrics still normalize, and don't grow the flag
    kernel = document["metrics"]["kernel_events_per_sec"]
    assert kernel["normalized"] == pytest.approx(5.0)
    assert "calibration_free" not in kernel


def test_calibration_free_metrics_compare_raw_to_raw():
    """The 15% gate on a calibration-free metric fires on raw movement —
    e.g. the saturation cliff dropping a full sweep step."""
    def doc(raw):
        return build_result({"overload_saturation_ops_s": {
            "raw": raw, "unit": "ops/s/dc", "higher_is_better": True,
            "calibration_free": True}}, calibration=123.456)

    assert compare(doc(6000.0), doc(6000.0)).ok
    assert compare(doc(5500.0), doc(6000.0)).ok        # within 15%
    assert not compare(doc(4000.0), doc(6000.0)).ok    # cliff moved


def test_save_and_load_round_trip(tmp_path):
    path = str(tmp_path / "BENCH_perf.json")
    save_result(_result(), path)
    assert load_result(path)["metrics"].keys() == _result()["metrics"].keys()


def test_load_rejects_unknown_schema(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as handle:
        json.dump({"schema": 999}, handle)
    with pytest.raises(ValueError):
        load_result(path)


# -- regression verdict ------------------------------------------------------

def test_identical_results_pass():
    report = compare(_result(), _result())
    assert report.ok and report.verdict() == "PASS"


def test_small_slowdown_within_tolerance_passes():
    report = compare(_result(kernel_norm=1.8), _result(kernel_norm=2.0),
                     tolerance=0.15)
    assert report.ok


def test_rate_regression_beyond_tolerance_fails():
    report = compare(_result(kernel_norm=1.5), _result(kernel_norm=2.0),
                     tolerance=0.15)
    assert not report.ok
    failing = [c for c in report.comparisons if c.regression]
    assert [c.name for c in failing] == ["kernel_events_per_sec"]


def test_duration_regression_direction_is_inverted():
    # figure time going UP is the regression
    report = compare(_result(figure_norm=12.0), _result(figure_norm=10.0),
                     tolerance=0.15)
    assert not report.ok
    report = compare(_result(figure_norm=8.0), _result(figure_norm=10.0),
                     tolerance=0.15)
    assert report.ok


def test_speedups_never_fail():
    report = compare(_result(kernel_norm=20.0, figure_norm=1.0), _result())
    assert report.ok


def test_metric_missing_from_baseline_is_reported_not_failed():
    baseline = _result()
    del baseline["metrics"]["figure_smoke_seconds"]
    report = compare(_result(), baseline)
    assert report.ok
    assert report.missing_in_baseline == ["figure_smoke_seconds"]


# -- CLI ---------------------------------------------------------------------

def _quick_args(output):
    # figure and saturation are full cluster runs — far too heavy for
    # the quick CLI round-trips (saturation alone is a 5-rate sweep)
    return ["--repeat", "1", "--kernel-events", "4000", "--tree-batches", "2",
            "--skip", "figure", "--skip", "saturation", "--output", output]


def test_cli_writes_result_file(tmp_path, capsys):
    out = str(tmp_path / "BENCH_perf.json")
    assert perf_cli.main(_quick_args(out) + ["--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "kernel_events_per_sec" in document["metrics"]
    on_disk = load_result(out)
    assert on_disk["metrics"].keys() == document["metrics"].keys()


def test_cli_compare_against_own_output_passes(tmp_path, capsys):
    out = str(tmp_path / "BENCH_perf.json")
    assert perf_cli.main(_quick_args(out)) == 0
    # second run compared against the first: same machine, same code — any
    # honest tolerance passes; use a generous one to keep CI noise-proof
    code = perf_cli.main(_quick_args(str(tmp_path / "second.json"))
                         + ["--compare", out, "--tolerance", "0.9"])
    capsys.readouterr()
    assert code == 0


def test_cli_flags_regression_with_exit_one(tmp_path, capsys):
    out = str(tmp_path / "BENCH_perf.json")
    assert perf_cli.main(_quick_args(out)) == 0
    capsys.readouterr()  # drain the first run's human-readable output
    inflated = load_result(out)
    for entry in inflated["metrics"].values():
        factor = 1000.0 if entry["higher_is_better"] else 0.001
        entry["normalized"] *= factor
    baseline_path = str(tmp_path / "inflated.json")
    save_result(inflated, baseline_path)
    code = perf_cli.main(_quick_args(str(tmp_path / "fresh.json"))
                         + ["--compare", baseline_path, "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["comparison"]["verdict"] == "FAIL"
