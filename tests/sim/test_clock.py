"""Unit tests for physical clocks (skew, drift, monotonic timestamps)."""

from hypothesis import given, strategies as st

from repro.sim.clock import ClockFactory, PhysicalClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def test_now_tracks_simulated_time(sim):
    clock = PhysicalClock(sim)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert clock.now() == 10.0


def test_skew_offsets_reading(sim):
    clock = PhysicalClock(sim, skew=2.5)
    assert clock.now() == 2.5


def test_drift_grows_with_time(sim):
    clock = PhysicalClock(sim, drift_ppm=1000.0)  # 0.1%
    sim.schedule(1000.0, lambda: None)
    sim.run()
    assert abs(clock.now() - 1001.0) < 1e-9


def test_timestamps_strictly_increase(sim):
    clock = PhysicalClock(sim)
    stamps = [clock.timestamp() for _ in range(100)]
    assert all(b > a for a, b in zip(stamps, stamps[1:]))


def test_timestamp_respects_at_least(sim):
    clock = PhysicalClock(sim)
    ts = clock.timestamp(at_least=500.0)
    assert ts > 500.0
    # and stays monotonic afterwards
    assert clock.timestamp() > ts


def test_timestamp_at_least_in_past_is_ignored(sim):
    clock = PhysicalClock(sim, skew=100.0)
    first = clock.timestamp()
    second = clock.timestamp(at_least=1.0)
    assert second > first


def test_resync_zeroes_skew(sim):
    clock = PhysicalClock(sim, skew=50.0)
    clock.resync()
    assert clock.now() == 0.0


def test_factory_bounds_skew(sim):
    factory = ClockFactory(sim, RngRegistry(seed=5), max_skew=2.0)
    for _ in range(50):
        clock = factory.create()
        assert -2.0 <= clock.skew <= 2.0


def test_factory_deterministic(sim):
    skews_a = [ClockFactory(sim, RngRegistry(seed=5)).create().skew
               for _ in range(1)]
    skews_b = [ClockFactory(sim, RngRegistry(seed=5)).create().skew
               for _ in range(1)]
    assert skews_a == skews_b


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_timestamp_monotonic_under_arbitrary_at_least(at_leasts):
    sim = Simulator()
    clock = PhysicalClock(sim, skew=0.0)
    previous = float("-inf")
    for bound in at_leasts:
        ts = clock.timestamp(at_least=bound)
        assert ts > previous
        assert ts > bound
        previous = ts
