"""Unit tests for the server CPU queue and the cost model."""

import pytest

from repro.sim.cpu import CostModel, ServerCPU


def test_single_op_completes_after_cost(sim):
    cpu = ServerCPU(sim)
    done = []
    cpu.submit(2.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [2.0]


def test_ops_serialize_on_one_cpu(sim):
    cpu = ServerCPU(sim)
    done = []
    cpu.submit(2.0, lambda: done.append(sim.now))
    cpu.submit(3.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [2.0, 5.0]


def test_submit_after_idle_starts_at_now(sim):
    cpu = ServerCPU(sim)
    done = []
    cpu.submit(1.0, lambda: done.append(sim.now))
    sim.run()
    sim.schedule(9.0, lambda: cpu.submit(1.0, lambda: done.append(sim.now)))
    sim.run()
    assert done == [1.0, 11.0]


def test_negative_cost_rejected(sim):
    cpu = ServerCPU(sim)
    with pytest.raises(ValueError):
        cpu.submit(-0.1, lambda: None)


def test_consume_blocks_later_work(sim):
    cpu = ServerCPU(sim)
    cpu.consume(5.0)
    done = []
    cpu.submit(1.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [6.0]


def test_consume_zero_is_noop(sim):
    cpu = ServerCPU(sim)
    cpu.consume(0.0)
    assert cpu.busy_time == 0.0


def test_utilization(sim):
    cpu = ServerCPU(sim)
    cpu.submit(3.0, lambda: None)
    sim.run()
    assert cpu.utilization(10.0) == pytest.approx(0.3)
    assert cpu.utilization(0.0) == 0.0
    assert cpu.utilization(1.0) == 1.0  # clamped


def test_ops_counter(sim):
    cpu = ServerCPU(sim)
    cpu.submit(1.0, lambda: None)
    cpu.submit(1.0, lambda: None)
    assert cpu.ops_executed == 2


# -- cost model ---------------------------------------------------------------

def test_scalar_costs_cheaper_than_vector():
    model = CostModel()
    assert model.read_cost(2) < model.read_cost(2, vector_entries=7)
    assert model.write_cost(2) < model.write_cost(2, vector_entries=7)


def test_costs_grow_with_value_size():
    model = CostModel()
    assert model.write_cost(2048) > model.write_cost(8)
    expected = model.per_byte * (2048 - 8)
    assert model.write_cost(2048) - model.write_cost(8) == pytest.approx(expected)


def test_stabilization_cost_scales_with_partners():
    model = CostModel()
    assert model.stabilization_cost(6) == pytest.approx(
        6 * model.stabilization_per_partner)
    assert (model.stabilization_cost(6, vector_entries=7)
            > model.stabilization_cost(6))


def test_vector_cost_scales_with_entries():
    model = CostModel()
    delta = (model.read_cost(0, vector_entries=8)
             - model.read_cost(0, vector_entries=4))
    assert delta == pytest.approx(4 * model.vector_entry_metadata)
