"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_advances_time(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_run_in_chronological_order(sim):
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_run_fifo(sim):
    order = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(4.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.5]


def test_schedule_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_raises(sim):
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 2]


def test_run_until_advances_time_even_without_events(sim):
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_limit(sim):
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_events_executed_counter(sim):
    for i in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 3


def test_pending_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    keep.cancel()
    assert sim.pending() == 0


def test_zero_delay_runs_at_current_time(sim):
    sim.schedule(5.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    times = []
    sim.run()
    assert times == [5.0]


# -- Event.cancel semantics (heap entries outlive cancelled handles) ---------


def test_cancelled_event_skipped_without_counting_as_executed(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("keep"))
    dead = sim.schedule(2.0, lambda: fired.append("dead"))
    sim.schedule(3.0, lambda: fired.append("after"))
    dead.cancel()
    sim.run()
    assert fired == ["keep", "after"]
    assert sim.events_executed == 2
    assert sim.pending() == 0


def test_cancel_then_reschedule_fires_once_at_new_time(sim):
    fired = []
    first = sim.schedule(1.0, lambda: fired.append(sim.now))
    first.cancel()
    sim.schedule(4.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.0]
    assert sim.now == 4.0


def test_cancel_inside_callback_prevents_same_time_event(sim):
    fired = []

    def canceller():
        victim.cancel()

    # FIFO tie-break: the canceller was scheduled first, so it runs first
    # and the victim — due at the very same instant — must not fire
    sim.schedule(1.0, canceller)
    victim = sim.schedule(1.0, lambda: fired.append("victim"))
    sim.run()
    assert fired == []
    assert sim.events_executed == 1


def test_cancel_inside_callback_prevents_future_event(sim):
    fired = []
    victim = sim.schedule(5.0, lambda: fired.append("victim"))
    sim.schedule(1.0, victim.cancel)
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_double_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending() == 0
    sim.run()
    assert sim.events_executed == 0


def test_cancel_after_firing_is_a_noop(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    event.cancel()  # must not corrupt the cancelled-entry accounting
    assert sim.pending() == 0
    follow = sim.schedule(1.0, lambda: fired.append(2))
    assert sim.pending() == 1
    sim.run()
    assert fired == [1, 2]
    assert follow.cancelled  # fired events read as no-longer-cancellable


def test_self_cancel_during_own_callback_is_a_noop(sim):
    fired = []
    holder = []

    def callback():
        fired.append(sim.now)
        holder[0].cancel()

    holder.append(sim.schedule(2.0, callback))
    sim.run()
    assert fired == [2.0]
    assert sim.pending() == 0
    assert sim.events_executed == 1


def test_cancelled_events_do_not_advance_the_clock(sim):
    event = sim.schedule(10.0, lambda: None)
    event.cancel()
    sim.run(until=3.0)
    assert sim.now == 3.0
    sim.run()
    # the dead heap entry is discarded without executing at t=10
    assert sim.now == 3.0
    assert sim.pending() == 0
    assert sim.events_executed == 0


def test_pending_is_consistent_under_interleaved_cancels(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for event in events[::2]:
        event.cancel()
    assert sim.pending() == 5
    for event in events:
        event.cancel()  # half are double-cancels
    assert sim.pending() == 0
    sim.run()
    assert sim.events_executed == 0
