"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_advances_time(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_run_in_chronological_order(sim):
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_run_fifo(sim):
    order = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(4.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.5]


def test_schedule_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_raises(sim):
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 2]


def test_run_until_advances_time_even_without_events(sim):
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_limit(sim):
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_events_executed_counter(sim):
    for i in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 3


def test_pending_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    keep.cancel()
    assert sim.pending() == 0


def test_zero_delay_runs_at_current_time(sim):
    sim.schedule(5.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    times = []
    sim.run()
    assert times == [5.0]
