"""Unit tests for the simulated network (FIFO links, latency, faults)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, sender, message):
        self.received.append((self.sim.now, sender, message))


def make_net(sim, jitter=0.0, model=None):
    return Network(sim, latency_model=model, default_latency=1.0,
                   jitter=jitter, rng=RngRegistry(seed=3))


def test_basic_delivery_with_latency(sim):
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    a.send("b", "hello")
    sim.run()
    assert b.received == [(1.0, "a", "hello")]


def test_duplicate_process_name_rejected(sim):
    net = make_net(sim)
    Recorder(sim, "a").attach_network(net)
    with pytest.raises(ValueError):
        Recorder(sim, "a").attach_network(net)


def test_unknown_destination_raises(sim):
    net = make_net(sim)
    a = Recorder(sim, "a")
    a.attach_network(net)
    with pytest.raises(KeyError):
        a.send("ghost", "boo")


def test_fifo_order_with_jitter(sim):
    """Even with jitter, a later message never overtakes an earlier one."""
    net = make_net(sim, jitter=5.0)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    for i in range(50):
        a.send("b", i)
    sim.run()
    assert [m for _, _, m in b.received] == list(range(50))
    times = [t for t, _, _ in b.received]
    assert times == sorted(times)


def test_latency_model_sites(sim):
    model = LatencyModel(local_latency=0.5)
    model.set("X", "Y", 30.0)
    net = Network(sim, latency_model=model, rng=RngRegistry(seed=1))
    a, b, c = Recorder(sim, "a"), Recorder(sim, "b"), Recorder(sim, "c")
    for p in (a, b, c):
        p.attach_network(net)
    net.place("a", "X")
    net.place("b", "Y")
    net.place("c", "X")
    a.send("b", "far")
    a.send("c", "near")
    sim.run()
    assert b.received[0][0] == 30.0
    assert c.received[0][0] == 0.5  # intra-site


def test_latency_model_symmetric():
    model = LatencyModel()
    model.set("X", "Y", 12.0)
    assert model.get("Y", "X") == 12.0
    assert model.get("X", "X") == model.local_latency


def test_latency_model_unknown_pair_raises():
    model = LatencyModel()
    with pytest.raises(KeyError):
        model.get("X", "Y")


def test_latency_model_rejects_negative():
    model = LatencyModel()
    with pytest.raises(ValueError):
        model.set("X", "Y", -1.0)


def test_latency_model_from_matrix():
    model = LatencyModel.from_matrix(["A", "B"], [[0, 7], [7, 0]])
    assert model.get("A", "B") == 7.0
    assert model.sites() == {"A", "B"}


def test_partition_holds_messages_until_healed(sim):
    """Links are reliable FIFO channels: a partition delays traffic, it
    does not silently lose it (silent loss on a live channel would be
    undetectable by any protocol — only crashes lose state)."""
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    net.partition("a", "b")
    a.send("b", "held")
    sim.run()
    assert b.received == []  # nothing crosses while the link is down
    net.heal("a", "b")
    a.send("b", "fresh")
    sim.run()
    # the held message is re-sent at heal time (t=0 here) and keeps its
    # place in the FIFO order ahead of anything sent afterwards
    assert [m for _, _, m in b.received] == ["held", "fresh"]


def test_extra_delay_injection(sim):
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    net.inject_extra_delay("a", "b", 9.0)
    a.send("b", "slow")
    sim.run()
    assert b.received[0][0] == 10.0  # 1 base + 9 injected


def test_site_delay_injection(sim):
    model = LatencyModel()
    model.set("X", "Y", 10.0)
    net = Network(sim, latency_model=model, rng=RngRegistry(seed=1))
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    net.place("a", "X")
    net.place("b", "Y")
    net.inject_site_delay("X", "Y", 25.0)
    a.send("b", "m")
    sim.run()
    assert b.received[0][0] == 35.0


def test_crashed_process_drops_incoming(sim):
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    b.crash()
    a.send("b", "void")
    sim.run()
    assert b.received == []


def test_crashed_process_cannot_send(sim):
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    a.crash()
    a.send("b", "void")
    sim.run()
    assert b.received == []


def test_message_and_byte_accounting(sim):
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    net.send("a", "b", "x", size_bytes=128)
    net.send("a", "b", "y", size_bytes=64)
    sim.run()
    assert net.messages_sent == 2
    assert net.bytes_sent == 192


def test_isolate_holds_traffic_in_both_directions(sim):
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    net.isolate("b")
    assert net.is_isolated("b")
    a.send("b", "inbound")
    b.send("a", "outbound")
    sim.run()
    assert a.received == []
    assert b.received == []
    net.rejoin("b")
    assert not net.is_isolated("b")
    a.send("b", "again")
    sim.run()
    # rejoin releases the held traffic in both directions, in send order
    assert [m for _, _, m in a.received] == ["outbound"]
    assert [m for _, _, m in b.received] == ["inbound", "again"]


def test_isolation_spares_messages_already_in_flight(sim):
    """Outages act at send time: a message launched before the isolation
    still lands (the chaos scenarios rely on this to partition a
    serializer with one batch already on the wire)."""
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    a.send("b", "in-flight")
    net.isolate("b")
    sim.run()
    assert [m for _, _, m in b.received] == ["in-flight"]


def test_held_messages_keep_fifo_order_across_the_outage(sim):
    """A message still in flight when the partition starts must not be
    overtaken by held traffic released at heal time, and held traffic must
    not be overtaken by messages sent after the heal."""
    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    net.inject_extra_delay("a", "b", 10.0)  # in-flight survives the outage
    a.send("b", "before")
    net.partition("a", "b")
    a.send("b", "during-1")
    a.send("b", "during-2")
    sim.schedule(5.0, lambda: net.heal("a", "b"))
    sim.schedule(5.0, lambda: a.send("b", "after"))
    sim.run()
    assert [m for _, _, m in b.received] == [
        "before", "during-1", "during-2", "after"]


def test_traced_runs_observe_held_messages_on_release(sim):
    class Trace:
        def __init__(self):
            self.sent = []
            self.delivered = []

        def on_send(self, src, dst, message, arrival):
            self.sent.append((sim.now, message))
            return len(self.sent)

        def on_deliver(self, src, dst, seq, message):
            self.delivered.append(message)

        def on_drop(self, src, dst, message):  # pragma: no cover
            raise AssertionError("reliable links never drop")

    net = make_net(sim)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    trace = Trace()
    net.trace = trace
    net.isolate("b")
    a.send("b", "void")
    sim.run()
    assert trace.sent == []  # held, not yet on the wire
    assert b.received == []
    net.rejoin("b")
    sim.run()
    assert trace.sent == [(0.0, "void")]  # re-sent at rejoin time
    assert trace.delivered == ["void"]
    assert [m for _, _, m in b.received] == ["void"]
