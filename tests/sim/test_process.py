"""Unit tests for the actor base class (timers, crash semantics)."""

import pytest

from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class Echo(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.inbox = []

    def receive(self, sender, message):
        self.inbox.append(message)


def test_send_without_network_raises(sim):
    p = Echo(sim, "p")
    with pytest.raises(RuntimeError):
        p.send("q", "hi")


def test_set_timer_fires(sim):
    p = Echo(sim, "p")
    fired = []
    p.set_timer(3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]


def test_set_timer_suppressed_after_crash(sim):
    p = Echo(sim, "p")
    fired = []
    p.set_timer(3.0, lambda: fired.append(1))
    p.crash()
    sim.run()
    assert fired == []


def test_every_repeats(sim):
    p = Echo(sim, "p")
    fired = []
    p.every(2.0, lambda: fired.append(sim.now))
    sim.run(until=7.0)
    assert fired == [2.0, 4.0, 6.0]


def test_every_rejects_nonpositive_period(sim):
    p = Echo(sim, "p")
    with pytest.raises(ValueError):
        p.every(0.0, lambda: None)


def test_every_cancel_stops_chain(sim):
    p = Echo(sim, "p")
    fired = []
    timer = p.every(2.0, lambda: fired.append(sim.now))
    sim.run(until=5.0)
    timer.cancel()
    sim.run(until=20.0)
    assert fired == [2.0, 4.0]


def test_every_stops_on_crash(sim):
    p = Echo(sim, "p")
    fired = []
    p.every(2.0, lambda: fired.append(sim.now))
    sim.schedule(5.0, p.crash)
    sim.run(until=20.0)
    assert fired == [2.0, 4.0]


def test_recover_resumes_message_delivery(sim):
    net = Network(sim, default_latency=1.0, rng=RngRegistry(seed=1))
    a, b = Echo(sim, "a"), Echo(sim, "b")
    a.attach_network(net)
    b.attach_network(net)
    b.crash()
    a.send("b", "lost")
    sim.run()
    b.recover()
    a.send("b", "kept")
    sim.run()
    assert b.inbox == ["kept"]


def test_repr(sim):
    assert "Echo" in repr(Echo(sim, "p"))


def test_restart_is_a_noop_while_alive(sim):
    p = Echo(sim, "p")
    p.restart()
    assert p.alive
    assert p.restarts == 0


def test_restart_revives_and_counts(sim):
    p = Echo(sim, "p")
    p.crash()
    assert not p.alive
    p.restart()
    assert p.alive
    assert p.restarts == 1


def test_restart_invokes_rearm_hook():
    """Periodic timers stop permanently when a tick finds the process dead;
    on_restart is where a process re-arms them."""
    from repro.sim.engine import Simulator

    class Rearming(Echo):
        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.ticks = []
            self.every(2.0, lambda: self.ticks.append(self.sim.now))

        def on_restart(self):
            self.every(2.0, lambda: self.ticks.append(self.sim.now))

    sim = Simulator()
    p = Rearming(sim, "p")
    sim.schedule(5.0, p.crash)
    sim.schedule(9.0, p.restart)
    sim.run(until=14.0)
    assert p.ticks == [2.0, 4.0, 11.0, 13.0]
    assert p.restarts == 1
