"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(seed=1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_deterministic_across_registries():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=1).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    registry = RngRegistry(seed=1)
    a = [registry.stream("a").random() for _ in range(10)]
    b = [registry.stream("b").random() for _ in range(10)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_consuming_one_stream_does_not_perturb_another():
    registry_a = RngRegistry(seed=9)
    registry_b = RngRegistry(seed=9)
    # draw heavily from an unrelated stream in registry_a only
    for _ in range(1000):
        registry_a.stream("noise").random()
    assert (registry_a.stream("signal").random()
            == registry_b.stream("signal").random())
