"""The offline causal-consistency checker itself."""

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.verify.checker import ExecutionLog


def label(ts, origin, key="k"):
    return Label(LabelType.UPDATE, src=f"{origin}/g0", ts=ts, target=key,
                 origin_dc=origin)


def make_log(replication=None):
    return ExecutionLog(replication or ReplicationMap(["A", "B"]))


def test_clean_history_passes():
    log = make_log()
    a = label(1.0, "A")
    b = label(2.0, "B")
    log.record_update(a, "A", 1.0)
    log.record_visible(a, "B", 10.0)
    log.record_update(b, "B", 11.0)
    log.record_update_deps((2.0, "B/g0"), frozenset({(1.0, "A/g0")}))
    log.record_visible(b, "A", 20.0)
    assert log.check() == []


def test_detects_causal_order_violation():
    a = label(1.0, "A")
    b = label(2.0, "B")
    # at C the dependent update surfaces before its dependency
    log3 = make_log(ReplicationMap(["A", "B", "C"]))
    log3.record_update(a, "A", 1.0)
    log3.record_visible(a, "B", 5.0)   # a was visible at B before b issued
    log3.record_update(b, "B", 11.0)
    log3.record_update_deps((2.0, "B/g0"), frozenset({(1.0, "A/g0")}))
    log3.record_visible(b, "C", 20.0)   # b before a at C
    log3.record_visible(a, "C", 25.0)
    violations = [v for v in log3.check() if v.kind == "causal-order"]
    assert len(violations) == 1
    assert violations[0].dc == "C"


def test_missing_dependency_is_violation_when_replicated():
    log = make_log()
    a = label(1.0, "A")
    b = label(2.0, "B")
    log.record_update(a, "A", 1.0)
    log.record_update(b, "B", 11.0)
    log.record_update_deps((2.0, "B/g0"), frozenset({(1.0, "A/g0")}))
    log.record_visible(b, "A", 5.0)  # fine: a is local at A
    log2 = make_log(ReplicationMap(["A", "B", "C"]))
    log2.record_update(a, "A", 1.0)
    log2.record_visible(a, "B", 5.0)
    log2.record_update(b, "B", 11.0)
    log2.record_update_deps((2.0, "B/g0"), frozenset({(1.0, "A/g0")}))
    log2.record_visible(b, "C", 15.0)  # a never visible at C
    violations = [v for v in log2.check() if v.kind == "causal-order"]
    assert len(violations) == 1


def test_partial_replication_exemption():
    """A dependency on an item the datacenter does not replicate is not a
    violation (genuine partial replication, §2)."""
    replication = ReplicationMap(["A", "B", "C"])
    replication.set_group("gab", ["A", "B"])
    log = make_log(replication)
    a = label(1.0, "A", key="gab:0")   # only replicated at A, B
    b = label(2.0, "B", key="other")
    log.record_update(a, "A", 1.0)
    log.record_visible(a, "B", 5.0)
    log.record_update(b, "B", 11.0)
    log.record_update_deps((2.0, "B/g0"), frozenset({(1.0, "A/g0")}))
    log.record_visible(b, "C", 20.0)   # a never goes to C: exempt
    assert [v for v in log.check() if v.kind == "causal-order"] == []


def test_session_monotonicity_violation():
    log = make_log()
    log.record_read("c1", "A", "k", returned=(1.0, "A/g0"),
                    observed_max=(2.0, "B/g0"))
    violations = [v for v in log.check()
                  if v.kind == "session-monotonicity"]
    assert len(violations) == 1
    assert "c1" in violations[0].detail


def test_session_read_of_nothing_after_observation_is_violation():
    log = make_log()
    log.record_read("c1", "A", "k", returned=None,
                    observed_max=(2.0, "B/g0"))
    assert any(v.kind == "session-monotonicity" for v in log.check())


def test_session_clean_reads_pass():
    log = make_log()
    log.record_read("c1", "A", "k", returned=(3.0, "B/g0"),
                    observed_max=(2.0, "B/g0"))
    log.record_read("c1", "A", "k", returned=(3.0, "B/g0"),
                    observed_max=(3.0, "B/g0"))
    log.record_read("c2", "A", "k", returned=None, observed_max=None)
    assert log.check() == []


def test_deps_recorded_before_update_hook():
    """Client replies can race ahead of the datacenter's record_update."""
    log = make_log()
    log.record_update_deps((2.0, "B/g0"), frozenset())
    b = label(2.0, "B")
    log.record_update(b, "B", 11.0)
    record = log.updates[(2.0, "B/g0")]
    assert record.origin in ("", "B")  # stub kept, no crash
    assert log.check() == []


def test_visible_counts():
    log = make_log()
    a = label(1.0, "A")
    log.record_update(a, "A", 1.0)
    log.record_visible(a, "B", 5.0)
    log.record_visible(a, "B", 6.0)  # duplicate ignored
    assert log.visible_counts() == {"A": 1, "B": 1}
    assert log.read_count() == 0
