"""Arrival models: validation, rate curves, interarrival statistics.

The open-loop arrival processes are pure samplers over named RNG
streams, so they are tested directly — no cluster required.  Rate-curve
algebra (diurnal amplitude, peak) is checked exactly; interarrival
means statistically against pinned seeds.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import (ClosedLoop, DiurnalArrivals,
                                      PoissonArrivals)


def test_closed_loop_is_not_open():
    assert ClosedLoop().open_loop is False
    assert PoissonArrivals(100.0).open_loop is True
    assert DiurnalArrivals(100.0).open_loop is True


def test_validation_errors():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        PoissonArrivals(-5.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(100.0, peak_factor=0.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(100.0, period_ms=0.0)


def test_poisson_rate_is_flat():
    arrivals = PoissonArrivals(250.0)
    assert arrivals.rate_at(0.0) == 250.0
    assert arrivals.rate_at(12345.6) == 250.0
    assert arrivals.peak_rate() == 250.0


def test_poisson_interarrival_mean():
    """Mean gap over many draws ≈ 1000/rate milliseconds."""
    stream = RngRegistry(seed=11).stream("openloop-I")
    arrivals = PoissonArrivals(500.0)
    draws = [arrivals.next_interarrival(stream, 0.0) for _ in range(20_000)]
    assert all(gap >= 0.0 for gap in draws)
    assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.05)


def test_diurnal_amplitude_algebra():
    """peak/trough == peak_factor exactly, by construction of a."""
    arrivals = DiurnalArrivals(100.0, peak_factor=3.0, period_ms=1000.0)
    assert arrivals.amplitude == pytest.approx(0.5)
    assert arrivals.peak_rate() == pytest.approx(150.0)
    peak = arrivals.rate_at(250.0)    # sin = 1 at quarter period
    trough = arrivals.rate_at(750.0)  # sin = -1 at three quarters
    assert peak / trough == pytest.approx(3.0)


@settings(max_examples=30, deadline=None)
@given(rate=st.floats(min_value=1.0, max_value=10_000.0),
       pf=st.floats(min_value=1.0, max_value=10.0),
       t=st.floats(min_value=0.0, max_value=1e6))
def test_diurnal_rate_bounded_by_peak(rate, pf, t):
    arrivals = DiurnalArrivals(rate, peak_factor=pf, period_ms=777.0)
    assert 0.0 < arrivals.rate_at(t) <= arrivals.peak_rate() * (1 + 1e-12)


def test_diurnal_degenerates_to_poisson_at_factor_one():
    arrivals = DiurnalArrivals(400.0, peak_factor=1.0)
    assert arrivals.amplitude == 0.0
    for t in (0.0, 123.0, 999.0):
        assert arrivals.rate_at(t) == pytest.approx(400.0)


def test_diurnal_interarrival_mean_tracks_mean_rate():
    """Thinning is exact: over whole periods the mean gap ≈ 1000/mean."""
    stream = RngRegistry(seed=7).stream("openloop-F")
    arrivals = DiurnalArrivals(200.0, peak_factor=2.0, period_ms=100.0)
    now, gaps = 0.0, []
    for _ in range(20_000):
        gap = arrivals.next_interarrival(stream, now)
        assert gap > 0.0
        gaps.append(gap)
        now += gap
    assert sum(gaps) / len(gaps) == pytest.approx(5.0, rel=0.05)


def test_interarrival_sequence_is_deterministic_per_stream():
    def draw(seed, name):
        stream = RngRegistry(seed=seed).stream(name)
        arrivals = DiurnalArrivals(300.0, peak_factor=2.0, period_ms=250.0)
        now, out = 0.0, []
        for _ in range(200):
            gap = arrivals.next_interarrival(stream, now)
            now += gap
            out.append(gap)
        return out

    assert draw(11, "openloop-I") == draw(11, "openloop-I")
    assert draw(11, "openloop-I") != draw(11, "openloop-F")
    assert draw(11, "openloop-I") != draw(12, "openloop-I")


def test_frozen_dataclasses_hash_and_compare():
    """Arrival models are config values: frozen, comparable, hashable."""
    assert PoissonArrivals(100.0) == PoissonArrivals(100.0)
    assert hash(DiurnalArrivals(5.0)) == hash(DiurnalArrivals(5.0))
    with pytest.raises(Exception):
        PoissonArrivals(100.0).rate_ops_s = 200.0
