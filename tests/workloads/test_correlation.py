"""Correlation patterns for replica placement (§7.3.2)."""

import pytest

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.sim.rng import RngRegistry
from repro.workloads.correlation import CORRELATION_PATTERNS, build_replication


def build(pattern, **kwargs):
    return build_replication(EC2_REGIONS, pattern, ec2_latency,
                             RngRegistry(seed=3), **kwargs)


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        build("banana")


def test_full_pattern_replicates_everywhere():
    replication = build("full")
    assert replication.average_replication_degree() == len(EC2_REGIONS)


def test_degree_pattern_exact_degree():
    for degree in (2, 3, 5):
        replication = build("degree", degree=degree)
        assert replication.average_replication_degree() == pytest.approx(degree)


def test_degree_pattern_requires_degree():
    with pytest.raises(ValueError):
        build("degree")


def test_degree_pattern_picks_nearest():
    replication = build("degree", degree=2)
    # Ireland's nearest region is Frankfurt (10 ms)
    for group in replication.groups_at("I"):
        replicas = replication.replicas_of_group(group)
        if "I" in replicas and len(replicas) == 2 and group.startswith("gI"):
            assert replicas == frozenset({"I", "F"})


def test_exponential_more_partial_than_proportional():
    exponential = build("exponential", groups_per_dc=16)
    proportional = build("proportional", groups_per_dc=16)
    assert (exponential.average_replication_degree()
            < proportional.average_replication_degree())


def test_every_group_contains_home():
    replication = build("exponential")
    for home in EC2_REGIONS:
        for group in replication.groups():
            if group.startswith(f"g{home}."):
                assert home in replication.replicas_of_group(group)


def test_groups_per_dc():
    replication = build("uniform", groups_per_dc=5)
    assert len(replication.groups()) == 5 * len(EC2_REGIONS)


def test_min_degree_enforced():
    replication = build("exponential", groups_per_dc=8, min_degree=2)
    for group, replicas in replication.groups().items():
        assert len(replicas) >= 2


def test_deterministic_given_seed():
    a = build("uniform", groups_per_dc=4).groups()
    b = build("uniform", groups_per_dc=4).groups()
    assert a == b


def test_patterns_tuple_contents():
    assert set(CORRELATION_PATTERNS) == {
        "exponential", "proportional", "uniform", "full", "degree"}
