"""Facebook-style workload: graph generation, partitioning, op mix."""

import pytest

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.sim.rng import RngRegistry
from repro.workloads.facebook import (FacebookWorkload, OPERATION_MIX,
                                      generate_social_graph)
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp


def test_operation_mix_sums_to_one():
    assert sum(share for _, share, _ in OPERATION_MIX) == pytest.approx(1.0)


def test_graph_density_matches_attachment():
    rng = RngRegistry(seed=5)
    adjacency = generate_social_graph(500, 7, rng)
    edges = sum(len(friends) for friends in adjacency.values()) / 2
    # BA graph: ~attachment edges per added node
    assert 0.8 * 500 * 7 <= edges <= 1.2 * 500 * 7


def test_graph_is_symmetric_and_loop_free():
    adjacency = generate_social_graph(200, 5, RngRegistry(seed=5))
    for user, friends in adjacency.items():
        assert user not in friends
        for friend in friends:
            assert user in adjacency[friend]


def test_graph_rejects_tiny_n():
    with pytest.raises(ValueError):
        generate_social_graph(5, 7, RngRegistry(seed=1))


def test_graph_has_skewed_degree():
    adjacency = generate_social_graph(1000, 5, RngRegistry(seed=5))
    degrees = sorted((len(f) for f in adjacency.values()), reverse=True)
    assert degrees[0] > 5 * degrees[len(degrees) // 2]


def test_replication_map_respects_bounds():
    workload = FacebookWorkload(num_users=300, min_replicas=2, max_replicas=4)
    replication = workload.replication_map(EC2_REGIONS, ec2_latency,
                                           RngRegistry(seed=5))
    for group, replicas in replication.groups().items():
        assert 2 <= len(replicas) <= 4


def test_masters_reasonably_balanced():
    workload = FacebookWorkload(num_users=700)
    workload.replication_map(EC2_REGIONS, ec2_latency, RngRegistry(seed=5))
    loads = {}
    for user, master in workload.masters.items():
        loads[master] = loads.get(master, 0) + 1
    assert max(loads.values()) <= 1.25 * (700 / len(EC2_REGIONS))


def test_user_data_replicated_at_master():
    workload = FacebookWorkload(num_users=300)
    replication = workload.replication_map(EC2_REGIONS, ec2_latency,
                                           RngRegistry(seed=5))
    from repro.workloads.partitioning import user_group
    for user, master in workload.masters.items():
        assert master in replication.replicas_of_group(user_group(user))


def test_client_generator_requires_replication_map():
    workload = FacebookWorkload(num_users=300)
    with pytest.raises(RuntimeError):
        workload.client_generator("I", None, RngRegistry(seed=1),
                                  ec2_latency, "s")


def test_generator_produces_valid_ops():
    workload = FacebookWorkload(num_users=300)
    rng = RngRegistry(seed=5)
    replication = workload.replication_map(EC2_REGIONS, ec2_latency, rng)
    generator = workload.client_generator("I", replication, rng, ec2_latency,
                                          "client-x")
    ops = [generator(None) for _ in range(1000)]
    kinds = {type(op) for op in ops}
    assert ReadOp in kinds
    assert UpdateOp in kinds
    for op in ops:
        if isinstance(op, (ReadOp, UpdateOp)):
            assert "I" in replication.replicas(op.key)
        elif isinstance(op, RemoteReadOp):
            assert "I" not in replication.replicas(op.key)
            assert op.target_dc in replication.replicas(op.key)


def test_lower_replica_cap_creates_more_remote_reads():
    counts = {}
    for max_replicas in (2, 5):
        workload = FacebookWorkload(num_users=400, max_replicas=max_replicas)
        rng = RngRegistry(seed=5)
        replication = workload.replication_map(EC2_REGIONS, ec2_latency, rng)
        remote = 0
        for dc in EC2_REGIONS:
            generator = workload.client_generator(dc, replication, rng,
                                                  ec2_latency, f"c-{dc}")
            remote += sum(1 for _ in range(500)
                          if isinstance(generator(None), RemoteReadOp))
        counts[max_replicas] = remote
    assert counts[2] > counts[5]


def test_write_share_in_expected_range():
    workload = FacebookWorkload(num_users=300)
    rng = RngRegistry(seed=5)
    replication = workload.replication_map(EC2_REGIONS, ec2_latency, rng)
    generator = workload.client_generator("I", replication, rng, ec2_latency,
                                          "client-w")
    ops = [generator(None) for _ in range(3000)]
    writes = sum(1 for op in ops if isinstance(op, UpdateOp))
    # nominal write share is 18% (edit_own + write_friend), minus the
    # write_friend fallbacks that turn into reads
    assert 0.08 <= writes / len(ops) <= 0.25
