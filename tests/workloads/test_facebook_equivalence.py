"""Closed-loop equivalence pin for the arrival-model refactor.

PR 10 moved client pacing behind the arrival-model interface
(:mod:`repro.workloads.arrivals`): ``ClusterConfig.arrivals`` defaults to
the closed loop, and the open-loop source is a separate build path.  The
digest below was captured on the pre-refactor code: it hashes the exact
op stream (simulated issue time, client, operation repr) every client of
a pinned Facebook/Saturn cluster draws.  If the refactor — or any later
change to the default path — perturbs one op, one timestamp, or one RNG
draw, the digest moves and this test names the regression.

Regenerate (only when a behaviour change is *intended*)::

    PYTHONPATH=src python - <<'PY'
    from tests.workloads.test_facebook_equivalence import closed_loop_digest
    print(closed_loop_digest())
    PY
"""

import hashlib

from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig
from repro.workloads.arrivals import ClosedLoop
from repro.workloads.facebook import FacebookWorkload

#: sha256 of the op stream on the pre-arrival-model code (see module doc)
CLOSED_LOOP_DIGEST = \
    "d9de289f5bf5487936a10572fbe4819ecd83bd5a442b92bcde15b1a294359f58"


def closed_loop_digest(arrivals=None):
    sites = ("I", "F", "T")
    topology = TreeTopology.star("I", {s: s for s in sites})
    config = ClusterConfig(system="saturn", sites=sites, clients_per_dc=4,
                           num_partitions=2, seed=11,
                           saturn_topology=topology)
    if arrivals is not None:
        config.arrivals = arrivals
    workload = FacebookWorkload(num_users=300, attachment=5)
    cluster = Cluster(config, workload)
    stream = hashlib.sha256()
    for client in cluster.clients:
        def wrap(inner, client_id):
            def _record(c):
                op = inner(c)
                stream.update(
                    f"{c.sim.now:.6f}|{client_id}|{op!r}\n".encode())
                return op
            return _record
        client.workload = wrap(client.workload, client.client_id)
    cluster.run(duration=300.0, warmup=50.0)
    return stream.hexdigest()


def test_default_arrivals_reproduce_pre_refactor_op_stream():
    assert closed_loop_digest() == CLOSED_LOOP_DIGEST


def test_explicit_closed_loop_is_the_default():
    """ClosedLoop() spelled out must be byte-identical to the default."""
    assert closed_loop_digest(arrivals=ClosedLoop()) == CLOSED_LOOP_DIGEST
