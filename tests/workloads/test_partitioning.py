"""SPAR-like bounded partitioning (§7.4 / [46])."""

import pytest

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.sim.rng import RngRegistry
from repro.workloads.facebook import generate_social_graph
from repro.workloads.partitioning import (assign_masters,
                                          build_social_replication,
                                          user_group)


@pytest.fixture(scope="module")
def graph():
    return generate_social_graph(400, 6, RngRegistry(seed=11))


def test_assign_masters_covers_all_users(graph):
    masters = assign_masters(graph, EC2_REGIONS)
    assert set(masters) == set(graph)
    assert set(masters.values()) <= set(EC2_REGIONS)


def test_assign_masters_requires_dcs(graph):
    with pytest.raises(ValueError):
        assign_masters(graph, [])


def test_assign_masters_balance(graph):
    masters = assign_masters(graph, EC2_REGIONS, balance_slack=1.10)
    loads = {}
    for master in masters.values():
        loads[master] = loads.get(master, 0) + 1
    cap = int(len(graph) / len(EC2_REGIONS) * 1.10) + 1
    assert max(loads.values()) <= cap


def test_locality_beats_random(graph):
    """The greedy partitioner keeps more friendships intra-datacenter than
    round-robin placement."""
    masters = assign_masters(graph, EC2_REGIONS)
    rr = {user: EC2_REGIONS[i % len(EC2_REGIONS)]
          for i, user in enumerate(sorted(graph))}

    def local_edges(assignment):
        return sum(1 for u, friends in graph.items()
                   for f in friends if assignment[u] == assignment[f]) / 2

    assert local_edges(masters) > 1.5 * local_edges(rr)


def test_replication_bounds(graph):
    masters = assign_masters(graph, EC2_REGIONS)
    replication = build_social_replication(graph, masters, EC2_REGIONS,
                                           ec2_latency, min_replicas=2,
                                           max_replicas=4)
    for replicas in replication.groups().values():
        assert 2 <= len(replicas) <= 4


def test_replication_bound_validation(graph):
    masters = assign_masters(graph, EC2_REGIONS)
    with pytest.raises(ValueError):
        build_social_replication(graph, masters, EC2_REGIONS, ec2_latency,
                                 min_replicas=0)
    with pytest.raises(ValueError):
        build_social_replication(graph, masters, EC2_REGIONS, ec2_latency,
                                 min_replicas=3, max_replicas=2)


def test_max_replicas_clamped_to_dc_count(graph):
    masters = assign_masters(graph, EC2_REGIONS)
    replication = build_social_replication(graph, masters, EC2_REGIONS,
                                           ec2_latency, min_replicas=2,
                                           max_replicas=99)
    for replicas in replication.groups().values():
        assert len(replicas) <= len(EC2_REGIONS)


def test_replicas_prefer_friend_heavy_dcs(graph):
    masters = assign_masters(graph, EC2_REGIONS)
    replication = build_social_replication(graph, masters, EC2_REGIONS,
                                           ec2_latency, min_replicas=2,
                                           max_replicas=3)
    # for well-connected users, replica sites should host friends
    from collections import Counter
    checked = 0
    for user, friends in graph.items():
        if len(friends) < 20:
            continue
        votes = Counter(masters[f] for f in friends)
        top_dc, _ = votes.most_common(1)[0]
        replicas = replication.replicas_of_group(user_group(user))
        if top_dc != masters[user]:
            assert top_dc in replicas
            checked += 1
    assert checked > 0


def test_user_group_naming():
    assert user_group(42) == "gu42"
