"""Streaming social graph: distribution, determinism, partitioning, memory.

The streaming generator must be statistically interchangeable with the
materialized :func:`~repro.workloads.facebook.generate_social_graph`
(same mean degree, same skewed tail) while never materializing an edge
set — the million-user boot test at the bottom asserts the O(touched
users) memory claim directly.
"""

import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngRegistry
from repro.workloads.facebook import generate_social_graph
from repro.workloads.streaming import (IncrementalPartitioner,
                                       StreamingFacebookWorkload,
                                       StreamingSocialGraph,
                                       StreamingReplicationMap)

SITES = ["I", "F", "T"]


def flat_latency(a: str, b: str) -> float:
    return 0.0 if a == b else 50.0


# ---------------------------------------------------------------------------
# construction and basic structure
# ---------------------------------------------------------------------------

def test_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        StreamingSocialGraph(num_users=5, attachment=5)
    with pytest.raises(ValueError):
        StreamingSocialGraph(num_users=100, attachment=0)
    with pytest.raises(ValueError):
        StreamingSocialGraph(num_users=100, attachment=3).friends(100)


def test_seed_clique_is_complete():
    graph = StreamingSocialGraph(num_users=100, attachment=4, seed=3)
    for user in range(5):
        assert graph.out_neighbors(user) == tuple(
            v for v in range(5) if v != user)


def test_out_neighbors_are_older_distinct_users():
    graph = StreamingSocialGraph(num_users=2000, attachment=7, seed=1)
    for user in range(8, 2000, 97):
        out = graph.out_neighbors(user)
        assert len(out) == 7
        assert len(set(out)) == 7
        assert all(0 <= v < user for v in out)


def test_friends_are_sorted_self_free_unions():
    """friends(u) = sorted(out ∪ in) with no self-loop.  (Edge
    reciprocity is *approximated* by the streaming model — the reverse
    direction is resampled, which no workload observation can tell apart
    — so exact symmetry is deliberately not asserted.)"""
    graph = StreamingSocialGraph(num_users=500, attachment=5, seed=9)
    for user in range(0, 500, 41):
        friends = graph.friends(user)
        assert list(friends) == sorted(set(friends))
        assert user not in friends
        assert set(graph.out_neighbors(user)) <= set(friends)
        assert set(graph.in_neighbors(user)) <= set(friends)


# ---------------------------------------------------------------------------
# determinism (hypothesis)
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       user=st.integers(min_value=0, max_value=999))
def test_per_seed_user_determinism(seed, user):
    """friends(u) is a pure function of (seed, u) — two independently
    constructed graphs agree regardless of query order."""
    a = StreamingSocialGraph(num_users=1000, attachment=5, seed=seed)
    b = StreamingSocialGraph(num_users=1000, attachment=5, seed=seed)
    # query b in a different order first to perturb any shared state
    b.friends((user * 7 + 13) % 1000)
    assert a.friends(user) == b.friends(user)
    assert a.out_neighbors(user) == b.out_neighbors(user)
    assert a.in_neighbors(user) == b.in_neighbors(user)


def test_different_seeds_differ():
    a = StreamingSocialGraph(num_users=1000, attachment=5, seed=1)
    b = StreamingSocialGraph(num_users=1000, attachment=5, seed=2)
    assert any(a.friends(u) != b.friends(u) for u in range(100, 200))


# ---------------------------------------------------------------------------
# degree distribution vs the materialized generator
# ---------------------------------------------------------------------------

def _degree_stats(degrees):
    degrees = sorted(degrees)
    n = len(degrees)
    return {
        "mean": sum(degrees) / n,
        "median": degrees[n // 2],
        "max": degrees[-1],
        "p99": degrees[int(n * 0.99)],
    }


def test_degree_distribution_matches_materialized():
    """Same mean (2·attachment by edge counting), same skewed shape."""
    num_users, attachment = 3000, 5
    streaming = StreamingSocialGraph(num_users, attachment, seed=11)
    adjacency = generate_social_graph(num_users, attachment,
                                      RngRegistry(seed=11))
    s = _degree_stats([streaming.degree(u) for u in range(num_users)])
    m = _degree_stats([len(adjacency[u]) for u in range(num_users)])
    # every user adds `attachment` edges, so the mean degree is pinned
    assert s["mean"] == pytest.approx(2 * attachment, rel=0.15)
    assert s["mean"] == pytest.approx(m["mean"], rel=0.15)
    # both are power-law-ish: hubs far above the typical user
    assert s["max"] > 5 * s["median"]
    assert m["max"] > 5 * m["median"]
    assert s["p99"] == pytest.approx(m["p99"], rel=0.6)


def test_old_users_are_hubs():
    """Preferential attachment: early users accumulate in-degree."""
    graph = StreamingSocialGraph(num_users=5000, attachment=5, seed=7)
    old = sum(graph.degree(u) for u in range(10, 20)) / 10
    young = sum(graph.degree(u) for u in range(4900, 4910)) / 10
    assert old > 3 * young


# ---------------------------------------------------------------------------
# incremental partitioner
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999),
       num_dcs=st.integers(min_value=2, max_value=5))
def test_partitioner_respects_capacity(seed, num_dcs):
    datacenters = [f"dc{i}" for i in range(num_dcs)]
    graph = StreamingSocialGraph(num_users=600, attachment=4, seed=seed)
    part = IncrementalPartitioner(graph, datacenters, balance_slack=1.10)
    for user in range(600):
        assert part.master_of(user) in datacenters
    capacity = int(600 / num_dcs * 1.10) + 1
    assert part.assigned_users() == 600
    assert sum(part.load().values()) == 600
    assert all(load <= capacity for load in part.load().values())


def test_partitioner_is_deterministic_and_incremental():
    """Same (seed, query order) ⇒ same masters — assignment is
    discovery-ordered like the materialized SPAR pass, so the order is
    part of the contract — and a single query only assigns its closure."""
    order = [(u * 37 + 11) % 800 for u in range(800)]

    def masters(queries):
        graph = StreamingSocialGraph(num_users=800, attachment=4, seed=5)
        part = IncrementalPartitioner(graph, SITES)
        return [part.master_of(u) for u in queries], part

    first, _ = masters(order)
    second, _ = masters(order)
    assert first == second
    _, lazy = masters([799])
    assert 0 < lazy.assigned_users() < 800


def test_replication_map_bounds_replica_sets():
    graph = StreamingSocialGraph(num_users=400, attachment=4, seed=2)
    part = IncrementalPartitioner(graph, SITES)
    replication = StreamingReplicationMap(
        SITES, graph, part, flat_latency, min_replicas=2, max_replicas=3)
    for user in range(0, 400, 13):
        replicas = replication.replicas_of_group(f"gu{user}")
        assert 2 <= len(replicas) <= 3
        assert part.master_of(user) in replicas
        assert set(replicas) <= set(SITES)


# ---------------------------------------------------------------------------
# million-user boot without a materialized edge set
# ---------------------------------------------------------------------------

def test_million_user_boot_is_lazy():
    """A 10⁶-user workload boots, partitions, and generates ops while
    touching only the users the clients actually reach.  128 MiB of peak
    allocations is orders of magnitude below any materialized edge set
    (10⁶ users × 2·7 edges of Python ints is gigabytes)."""
    tracemalloc.start()
    try:
        workload = StreamingFacebookWorkload(num_users=1_000_000,
                                             attachment=7, min_replicas=2,
                                             max_replicas=3)
        rng = RngRegistry(seed=11)
        replication = workload.replication_map(SITES, flat_latency, rng)
        ops = []
        for site in SITES:
            gen = workload.client_generator(site, replication, rng,
                                            flat_latency,
                                            f"client-{site}-0")
            ops.extend(gen(None) for _ in range(100))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(ops) == 300 and all(op is not None for op in ops)
    touched = workload.graph.touched_users()
    assert 0 < touched < 100_000, touched
    # master_of() assigns the out-edge closure of each probe, so the
    # partitioner touches more users than the graph memoizes — but still
    # a fraction of the population, and within the same memory budget
    assert workload.partitioner.assigned_users() < 400_000
    assert peak < 128 * 1024 * 1024, f"peak allocations {peak / 2**20:.1f} MiB"
