"""Synthetic workload generator (§7.3.2)."""

import pytest

from repro.config.latencies import ec2_latency
from repro.sim.rng import RngRegistry
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp
from repro.workloads.synthetic import SyntheticWorkload

SITES = ["I", "F", "T", "S"]


def make_generator(workload, dc="I", seed=3):
    rng = RngRegistry(seed=seed)
    replication = workload.replication_map(SITES, ec2_latency, rng)
    generator = workload.client_generator(dc, replication, rng, ec2_latency,
                                          stream_name="client-test")
    return generator, replication


def sample_ops(generator, n=2000):
    return [generator(None) for _ in range(n)]


def test_parameter_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload(read_ratio=1.5)
    with pytest.raises(ValueError):
        SyntheticWorkload(remote_read_fraction=-0.1)
    with pytest.raises(ValueError):
        SyntheticWorkload(value_size=-1)


def test_read_write_ratio_approximate():
    workload = SyntheticWorkload(read_ratio=0.9, correlation="full")
    generator, _ = make_generator(workload)
    ops = sample_ops(generator)
    reads = sum(1 for op in ops if isinstance(op, ReadOp))
    assert 0.85 <= reads / len(ops) <= 0.95


def test_balanced_ratio():
    workload = SyntheticWorkload(read_ratio=0.5, correlation="full")
    generator, _ = make_generator(workload)
    ops = sample_ops(generator)
    writes = sum(1 for op in ops if isinstance(op, UpdateOp))
    assert 0.45 <= writes / len(ops) <= 0.55


def test_value_size_applied_to_updates():
    workload = SyntheticWorkload(read_ratio=0.0, value_size=512,
                                 correlation="full")
    generator, _ = make_generator(workload)
    for op in sample_ops(generator, 50):
        assert isinstance(op, UpdateOp)
        assert op.value_size == 512


def test_no_remote_reads_under_full_replication():
    workload = SyntheticWorkload(remote_read_fraction=0.5, correlation="full")
    generator, _ = make_generator(workload)
    assert not any(isinstance(op, RemoteReadOp)
                   for op in sample_ops(generator))


def test_remote_reads_generated_under_partial_replication():
    workload = SyntheticWorkload(remote_read_fraction=0.4,
                                 correlation="degree", degree=2)
    generator, replication = make_generator(workload)
    ops = sample_ops(generator)
    remote = [op for op in ops if isinstance(op, RemoteReadOp)]
    assert remote
    for op in remote:
        replicas = replication.replicas(op.key)
        assert "I" not in replicas          # really not local
        assert op.target_dc in replicas     # target actually has the data


def test_remote_read_targets_nearest_replica():
    workload = SyntheticWorkload(remote_read_fraction=1.0,
                                 correlation="degree", degree=2)
    generator, replication = make_generator(workload)
    for op in sample_ops(generator, 500):
        if isinstance(op, RemoteReadOp):
            replicas = replication.replicas(op.key)
            best = min(replicas, key=lambda dc: (ec2_latency("I", dc), dc))
            assert op.target_dc == best


def test_local_ops_touch_local_groups():
    workload = SyntheticWorkload(correlation="degree", degree=2)
    generator, replication = make_generator(workload, dc="T")
    for op in sample_ops(generator, 500):
        if isinstance(op, (ReadOp, UpdateOp)):
            assert "T" in replication.replicas(op.key)


def test_keyspace_bounded():
    workload = SyntheticWorkload(correlation="full", keys_per_group=4,
                                 groups_per_dc=2)
    generator, _ = make_generator(workload)
    keys = {op.key for op in sample_ops(generator)}
    assert len(keys) <= 4 * 2 * len(SITES)
