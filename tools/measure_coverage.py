"""Stdlib line-coverage estimator for picking the CI coverage floor.

CI measures coverage with pytest-cov; this repo's dev sandbox does not ship
coverage.py, so this script approximates the same number with a
``sys.settrace`` hook restricted to ``src/repro`` frames (frames outside the
package opt out of local tracing, keeping the slowdown tolerable).

Executable-line totals come from the ast: the first line of every statement
node, minus module/class/function docstrings — close to coverage.py's
statement counting, within a point or two on this codebase.

Usage: python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import ast
import os
import sys


def executable_lines(path: str) -> set:
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    docstrings = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                docstrings.add(body[0].lineno)
    lines = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and node.lineno not in docstrings:
            lines.add(node.lineno)
    return lines


def main() -> int:
    package_root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src", "repro"))
    hit: dict = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(package_root):
            return None  # no local tracing outside the package
        if event == "line":
            hit.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    import pytest

    sys.settrace(tracer)
    try:
        code = pytest.main(sys.argv[1:])
    finally:
        sys.settrace(None)

    total_lines = 0
    total_hit = 0
    per_file = []
    for dirpath, _, filenames in os.walk(package_root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            lines = executable_lines(path)
            covered = hit.get(path, set()) & lines
            total_lines += len(lines)
            total_hit += len(covered)
            if lines:
                per_file.append((len(covered) / len(lines),
                                 os.path.relpath(path, package_root),
                                 len(covered), len(lines)))
    per_file.sort()
    print("\nLowest-covered modules:")
    for ratio, rel, covered, count in per_file[:15]:
        print(f"  {ratio * 100:5.1f}%  {rel}  ({covered}/{count})")
    pct = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"\nTOTAL: {total_hit}/{total_lines} statements = {pct:.1f}%")
    return code


if __name__ == "__main__":
    sys.exit(main())
